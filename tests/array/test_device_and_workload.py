"""Unit tests for the device model, failure distributions and workloads."""

import numpy as np
import pytest

from repro.array import (
    BurstLengthDistribution,
    Device,
    DeviceState,
    random_payload,
    random_symbols,
    sequential_write_trace,
    stripe_data_for,
    symbol_size_for_stripe,
    update_trace,
)
from repro.codes import ReedSolomonStripeCode


class TestDevice:
    def test_write_read_roundtrip(self):
        device = Device(0, num_stripes=2, rows_per_chunk=4, symbol_size=16)
        symbol = np.arange(16, dtype=np.uint8)
        device.write(1, 2, symbol)
        assert np.array_equal(device.read(1, 2), symbol)
        assert device.read(0, 0) is None  # never written

    def test_read_returns_copy(self):
        device = Device(0, 1, 2, 8)
        device.write(0, 0, np.zeros(8, dtype=np.uint8))
        view = device.read(0, 0)
        view[0] = 9
        assert device.read(0, 0)[0] == 0

    def test_device_failure(self):
        device = Device(0, 1, 2, 8)
        device.write(0, 0, np.ones(8, dtype=np.uint8))
        device.fail()
        assert device.is_failed
        assert device.state is DeviceState.FAILED
        assert device.read(0, 0) is None
        with pytest.raises(IOError):
            device.write(0, 1, np.ones(8, dtype=np.uint8))

    def test_replace_clears_contents(self):
        device = Device(0, 1, 2, 8)
        device.write(0, 0, np.ones(8, dtype=np.uint8))
        device.fail()
        device.replace()
        assert not device.is_failed
        assert device.read(0, 0) is None

    def test_sector_failure_and_repair(self):
        device = Device(0, 1, 2, 8)
        device.write(0, 1, np.ones(8, dtype=np.uint8))
        device.fail_sector(0, 1)
        assert device.read(0, 1) is None
        assert device.bad_sectors() == {(0, 1)}
        device.repair_sector(0, 1, np.full(8, 7, dtype=np.uint8))
        assert np.array_equal(device.read(0, 1), np.full(8, 7, dtype=np.uint8))
        assert device.bad_sectors() == set()


class TestBurstLengthDistribution:
    def test_pmf_sums_to_one(self):
        dist = BurstLengthDistribution(b1=0.9, alpha=1.5, max_length=16)
        assert dist.pmf.sum() == pytest.approx(1.0)
        assert dist.pmf[1] == pytest.approx(0.9)

    def test_mean_close_to_field_measurements(self):
        """The paper cites B ~= 1.03 for b1 = 0.98-ish drives."""
        dist = BurstLengthDistribution(b1=0.98, alpha=1.79, max_length=16)
        assert 1.0 < dist.mean() < 1.2

    def test_cdf_monotone(self):
        dist = BurstLengthDistribution(b1=0.9, alpha=1.0, max_length=16)
        cdf = dist.cdf()
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == pytest.approx(1.0)

    def test_degenerate_max_length_one(self):
        dist = BurstLengthDistribution(b1=0.5, alpha=2.0, max_length=1)
        assert dist.pmf[1] == pytest.approx(1.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BurstLengthDistribution(b1=0.0)
        with pytest.raises(ValueError):
            BurstLengthDistribution(alpha=0.0)
        with pytest.raises(ValueError):
            BurstLengthDistribution(max_length=0)

    def test_sampling_respects_support(self):
        dist = BurstLengthDistribution(b1=0.7, alpha=1.2, max_length=8)
        samples = dist.sample(np.random.default_rng(0), size=500)
        assert samples.min() >= 1 and samples.max() <= 8


class TestWorkloads:
    def test_random_symbols_shape_and_dtype(self):
        symbols = random_symbols(5, 32, seed=1)
        assert len(symbols) == 5
        assert all(sym.dtype == np.uint8 and len(sym) == 32 for sym in symbols)

    def test_random_symbols_uint16(self):
        symbols = random_symbols(2, 8, seed=1, dtype=np.uint16)
        assert all(sym.dtype == np.uint16 for sym in symbols)

    def test_random_payload_deterministic_with_seed(self):
        assert random_payload(64, seed=3) == random_payload(64, seed=3)

    def test_stripe_data_for_code(self):
        code = ReedSolomonStripeCode(n=6, r=4, m=2)
        data = stripe_data_for(code, symbol_size=16, seed=2)
        assert len(data) == code.num_data_symbols

    def test_symbol_size_for_stripe(self):
        code = ReedSolomonStripeCode(n=16, r=16, m=2)
        assert symbol_size_for_stripe(code, 32 << 20) == (32 << 20) // 256
        assert symbol_size_for_stripe(code, 10) == 1

    def test_update_trace(self):
        code = ReedSolomonStripeCode(n=6, r=4, m=2)
        ops = list(update_trace(code, num_stripes=4, operations=10,
                                symbol_size=8, seed=5))
        assert len(ops) == 10
        for op in ops:
            assert 0 <= op.stripe < 4
            assert 0 <= op.data_index < code.num_data_symbols
            assert len(op.payload) == 8

    def test_sequential_write_trace(self):
        assert sequential_write_trace(100, 40) == [40, 40, 20]
        assert sequential_write_trace(0, 40) == []
