"""Integration tests for the storage-array simulator."""

import numpy as np
import pytest

from repro.array import (
    BurstLengthDistribution,
    DataLossError,
    FailureInjector,
    StorageArray,
    random_payload,
)
from repro.codes import ReedSolomonStripeCode, StairStripeCode


@pytest.fixture
def stair_array():
    code = StairStripeCode(n=8, r=4, m=2, e=(1, 1, 2))
    return StorageArray(code, num_stripes=3, symbol_size=64)


class TestReadWrite:
    def test_capacity(self, stair_array):
        assert stair_array.stripe_capacity == 20 * 64
        assert stair_array.capacity == 3 * 20 * 64

    def test_roundtrip(self, stair_array):
        payload = random_payload(stair_array.capacity - 10, seed=1)
        stair_array.write(payload)
        assert stair_array.read(len(payload)) == payload

    def test_single_stripe_write_and_padding(self, stair_array):
        stair_array.write_stripe(1, b"hello world")
        blob = stair_array.read_stripe(1)
        assert blob.startswith(b"hello world")
        assert len(blob) == stair_array.stripe_capacity

    def test_oversized_writes_rejected(self, stair_array):
        with pytest.raises(ValueError):
            stair_array.write_stripe(0, b"x" * (stair_array.stripe_capacity + 1))
        with pytest.raises(ValueError):
            stair_array.write(b"x" * (stair_array.capacity + 1))

    def test_invalid_stripe_index(self, stair_array):
        with pytest.raises(IndexError):
            stair_array.read_stripe(5)

    def test_invalid_num_stripes(self):
        code = StairStripeCode(n=8, r=4, m=2, e=(1,))
        with pytest.raises(ValueError):
            StorageArray(code, num_stripes=0)


class TestFailuresAndRecovery:
    def test_degraded_read_with_device_and_sector_failures(self, stair_array):
        payload = random_payload(stair_array.capacity, seed=2)
        stair_array.write(payload)
        stair_array.fail_device(2)
        stair_array.fail_device(6)
        stair_array.fail_sector(stripe=0, row=3, device=5)
        stair_array.fail_sector(stripe=1, row=0, device=0)
        assert stair_array.read(len(payload)) == payload

    def test_degraded_read_can_be_disallowed(self, stair_array):
        stair_array.write(random_payload(stair_array.capacity, seed=3))
        stair_array.fail_device(0)
        with pytest.raises(DataLossError):
            stair_array.read_stripe(0, degraded_ok=False)

    def test_data_loss_detected(self, stair_array):
        stair_array.write(random_payload(stair_array.capacity, seed=4))
        for device in (0, 1, 2):
            stair_array.fail_device(device)
        with pytest.raises(DataLossError):
            stair_array.read_stripe(0)

    def test_status_reporting(self, stair_array):
        stair_array.write(random_payload(stair_array.capacity, seed=5))
        assert stair_array.status().healthy
        stair_array.fail_device(1)
        stair_array.fail_sector(2, 1, 4)
        status = stair_array.status()
        assert status.failed_devices == [1]
        assert status.bad_sectors == 1
        assert status.stripes_with_damage == 3
        assert not status.healthy

    def test_rebuild_restores_health(self, stair_array):
        payload = random_payload(stair_array.capacity, seed=6)
        stair_array.write(payload)
        stair_array.fail_device(3)
        stair_array.fail_device(7)
        assert sorted(stair_array.rebuild()) == [3, 7]
        assert stair_array.status().healthy
        assert stair_array.read(len(payload)) == payload

    def test_rebuild_without_failures_is_noop(self, stair_array):
        stair_array.write(random_payload(stair_array.capacity, seed=7))
        assert stair_array.rebuild() == []

    def test_scrub_repairs_latent_sector_errors(self, stair_array):
        payload = random_payload(stair_array.capacity, seed=8)
        stair_array.write(payload)
        stair_array.fail_sector(0, 0, 0)
        stair_array.fail_sector(2, 3, 5)
        assert stair_array.scrub() == 2
        assert stair_array.status().healthy
        assert stair_array.read(len(payload)) == payload

    def test_update_symbol_counts_parity_writes(self, stair_array):
        stair_array.write(random_payload(stair_array.capacity, seed=9))
        rewritten = stair_array.update_symbol(
            0, 0, np.arange(64, dtype=np.uint8))
        assert rewritten >= stair_array.code.config.m
        blob = stair_array.read_stripe(0)
        assert blob[:64] == bytes(range(64))


class TestWithReedSolomon:
    def test_rs_array_cannot_survive_extra_sector_failure(self):
        code = ReedSolomonStripeCode(n=6, r=4, m=1)
        array = StorageArray(code, num_stripes=1, symbol_size=32)
        payload = random_payload(array.capacity, seed=10)
        array.write(payload)
        array.fail_device(0)
        array.fail_sector(0, 2, 3)
        with pytest.raises(DataLossError):
            array.read_stripe(0)

    def test_stair_array_survives_the_same_scenario(self):
        code = StairStripeCode(n=6, r=4, m=1, e=(1,))
        array = StorageArray(code, num_stripes=1, symbol_size=32)
        payload = random_payload(array.capacity, seed=10)
        array.write(payload)
        array.fail_device(0)
        array.fail_sector(0, 2, 3)
        assert array.read(len(payload)) == payload


class TestFailureInjection:
    def test_injector_events(self, stair_array):
        stair_array.write(random_payload(stair_array.capacity, seed=11))
        injector = FailureInjector(8, 3, 4, seed=0)
        stair_array.inject(injector.random_device_failures(2))
        assert len(stair_array.status().failed_devices) == 2
        event = injector.random_sector_failures(
            3, exclude_devices=stair_array.status().failed_devices)
        stair_array.inject(event)
        assert stair_array.status().bad_sectors == 3

    def test_burst_injection_respects_chunk_boundary(self):
        injector = FailureInjector(8, 2, 4, seed=1)
        dist = BurstLengthDistribution(b1=0.0 + 1e-9, alpha=1.0, max_length=4)
        event = injector.burst_sector_failures(5, dist)
        for failure in event.sector_failures:
            assert 0 <= failure.row < 4

    def test_worst_case_event_matches_coverage(self, stair_array):
        injector = FailureInjector(8, 3, 4, seed=2)
        event = injector.worst_case_event(m=2, e=(1, 1, 2))
        assert len(event.device_failures) == 2
        assert len(event.sector_failures) == 4
        payload = random_payload(stair_array.capacity, seed=12)
        stair_array.write(payload)
        stair_array.inject(event)
        assert stair_array.read(len(payload)) == payload
