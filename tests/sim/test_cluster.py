"""Damage-state arrays and the vectorized recoverability predicate.

The load-bearing property: :class:`CoverageModel` must agree with (or be
a conservative lower bound on) what the real codes of :mod:`repro.codes`
can actually repair.
"""

import itertools

import numpy as np
import pytest

from repro.codes.raid import RAID5Code
from repro.codes.reed_solomon import ReedSolomonStripeCode
from repro.codes.sd import SDCode
from repro.codes.idr import IDRScheme
from repro.codes.stair_adapter import StairStripeCode
from repro.sim.cluster import CoverageModel, SimulatedArray, SimulatedCluster


def _patterns(n, r, max_failed_devices, max_damaged):
    """Yield (failed_devices, {chunk: count}) damage patterns."""
    for f in range(max_failed_devices + 1):
        failed = tuple(range(n - f, n))
        healthy = [j for j in range(n) if j not in failed]
        for k in range(max_damaged + 1):
            for chunks in itertools.combinations(healthy, k):
                for counts in itertools.product(range(1, r + 1),
                                                repeat=k):
                    yield failed, dict(zip(chunks, counts))


def _as_arrays(n, failed, damage):
    errors = np.zeros((1, n), dtype=np.int16)
    for chunk, count in damage.items():
        errors[0, chunk] = count
    mask = np.zeros(n, dtype=bool)
    mask[list(failed)] = True
    return errors, mask


def _positions(r, failed, damage, n):
    """Stacked-from-row-0 lost positions for StripeCode.tolerates."""
    positions = [(row, j) for j in failed for row in range(r)]
    for chunk, count in damage.items():
        positions.extend((row, chunk) for row in range(count))
    return positions


def test_stair_coverage_matches_check_coverage_exactly():
    code = StairStripeCode(n=4, r=3, m=1, e=(1, 2))
    coverage = CoverageModel.from_code(code)
    for failed, damage in _patterns(4, 3, 2, 2):
        errors, mask = _as_arrays(4, failed, damage)
        predicted = bool(coverage.stripes_recoverable(errors, mask)[0])
        actual = code.tolerates(_positions(3, failed, damage, 4))
        assert predicted == actual, (failed, damage)


def test_rs_coverage_matches_row_stacked_patterns():
    code = ReedSolomonStripeCode(n=5, r=3, m=2)
    coverage = CoverageModel.from_code(code)
    for failed, damage in _patterns(5, 3, 3, 2):
        errors, mask = _as_arrays(5, failed, damage)
        predicted = bool(coverage.stripes_recoverable(errors, mask)[0])
        # Worst-case placement: all sector damage stacked in row 0, so
        # row 0 sees every damaged chunk -- there the chunk-granularity
        # model is exact.
        actual = code.tolerates(_positions(3, failed, damage, 5))
        assert predicted == actual, (failed, damage)


def test_rs_coverage_is_conservative_for_spread_patterns():
    """Damage spread over distinct rows may be decodable even when the
    chunk-level model (and the paper's Appendix B) writes it off."""
    code = ReedSolomonStripeCode(n=5, r=3, m=2)
    coverage = CoverageModel.from_code(code)
    # Three damaged chunks, one sector each, all in different rows.
    errors = np.array([[1, 1, 1, 0, 0]], dtype=np.int16)
    mask = np.zeros(5, dtype=bool)
    assert not coverage.stripes_recoverable(errors, mask)[0]
    spread = [(0, 0), (1, 1), (2, 2)]
    assert code.tolerates(spread)


def test_sd_coverage_matches_definition():
    coverage = CoverageModel(kind="sd", m=1, r=4, s=2)

    def reference(failed_count, counts):
        # Absorb up to m - f whole chunks (any choice), then the rest
        # must total at most s sectors.
        spare = 1 - failed_count
        if spare < 0:
            return False
        best = sorted(counts, reverse=True)
        return sum(best[spare:]) <= 2

    for f in range(3):
        for counts in itertools.product(range(5), repeat=3):
            errors = np.zeros((1, 3 + f), dtype=np.int16)
            errors[0, :3] = counts
            mask = np.zeros(3 + f, dtype=bool)
            mask[3:] = True
            predicted = bool(coverage.stripes_recoverable(errors, mask)[0])
            assert predicted == reference(f, counts), (f, counts)


def test_idr_coverage_matches_tolerates_on_data_chunks():
    code = IDRScheme(n=5, r=4, m=1, epsilon=2)
    coverage = CoverageModel.from_code(code)
    data_chunks = [0, 1, 2, 3]
    for k in range(3):
        for chunks in itertools.combinations(data_chunks, k):
            for counts in itertools.product(range(1, 5), repeat=k):
                damage = dict(zip(chunks, counts))
                errors, mask = _as_arrays(5, (), damage)
                predicted = bool(
                    coverage.stripes_recoverable(errors, mask)[0])
                actual = code.tolerates(_positions(4, (), damage, 5))
                assert predicted == actual, damage


def test_coverage_too_many_device_failures():
    coverage = CoverageModel(kind="stair", m=1, r=4, e=(1, 2))
    errors = np.zeros((3, 4), dtype=np.int16)
    mask = np.array([True, True, False, False])
    assert not coverage.stripes_recoverable(errors, mask).any()


def test_coverage_from_code_dispatch():
    assert CoverageModel.from_code(RAID5Code(n=5, r=4)).kind == "rs"
    stair = CoverageModel.from_code(StairStripeCode(n=8, r=4, m=2,
                                                    e=(1, 1, 2)))
    assert stair.kind == "stair" and stair.e == (1, 1, 2) and stair.s == 4
    sd = CoverageModel.from_code(SDCode(n=8, r=4, m=1, s=2))
    assert sd.kind == "sd" and sd.s == 2
    with pytest.raises(TypeError):
        CoverageModel.from_code(object())  # type: ignore[arg-type]


def test_tolerates_counts_convenience():
    coverage = CoverageModel(kind="stair", m=1, r=4, e=(1, 2))
    assert coverage.tolerates_counts((2, 1))
    assert coverage.tolerates_counts((2, 2))  # m absorbs one whole chunk
    assert not coverage.tolerates_counts((2, 2, 2))
    assert coverage.tolerates_counts((4, 2, 1))  # worst chunk absorbed by m
    # A failed device consumes the m budget; e still covers (2, 1).
    assert coverage.tolerates_counts((2, 1), num_failed_devices=1)
    assert not coverage.tolerates_counts((2, 2), num_failed_devices=1)
    assert coverage.tolerates_counts((), num_failed_devices=1)
    assert not coverage.tolerates_counts((), num_failed_devices=2)


# --------------------------------------------------------------------------- #
# SimulatedArray / SimulatedCluster state machine
# --------------------------------------------------------------------------- #
def test_simulated_array_damage_lifecycle():
    code = RAID5Code(n=4, r=4)
    array = SimulatedArray(code, num_stripes=8)
    assert array.all_recoverable()

    array.add_sector_errors(stripe=2, device=1, count=2)
    assert array.total_bad_sectors == 2
    assert array.all_recoverable()  # one damaged chunk fits within m=1

    array.fail_device(0)
    assert array.num_failed == 1
    # Failed device + damaged chunk in stripe 2 exceeds RAID-5 coverage.
    recoverable = array.stripes_recoverable()
    assert not recoverable[2]
    assert recoverable[[0, 1, 3, 4, 5, 6, 7]].all()
    assert not array.all_recoverable()
    assert not array.stripe_recoverable(2)

    # A full-stripe write refreshes the surviving chunks of stripe 2.
    array.clear_stripe_errors(2)
    assert array.all_recoverable()

    replaced = array.rebuild()
    assert replaced == [0]
    assert array.num_failed == 0


def test_simulated_array_burst_caps_at_r():
    array = SimulatedArray(RAID5Code(n=4, r=4), num_stripes=2)
    array.add_sector_errors(0, 3, count=99)
    assert array.sector_errors[0, 3] == 4


def test_simulated_array_failed_device_absorbs_its_errors():
    array = SimulatedArray(RAID5Code(n=4, r=4), num_stripes=2)
    array.add_sector_errors(0, 1, count=2)
    array.fail_device(1)
    assert array.total_bad_sectors == 0
    array.add_sector_errors(0, 1, count=1)  # writes to a dead device: no-op
    assert array.total_bad_sectors == 0


def test_simulated_array_scrub_clears_healthy_chunks():
    array = SimulatedArray(RAID5Code(n=4, r=4), num_stripes=4)
    array.add_sector_errors(0, 1, count=2)
    array.add_sector_errors(3, 2, count=1)
    assert array.scrub() == 3
    assert array.total_bad_sectors == 0


def test_simulated_cluster_summary():
    cluster = SimulatedCluster(RAID5Code(n=4, r=4), num_arrays=3,
                               stripes_per_array=16)
    assert cluster.num_devices == 12
    cluster.arrays[1].fail_device(2)
    cluster.arrays[2].add_sector_errors(5, 0, count=1)
    summary = cluster.damage_summary()
    assert summary["failed_devices"] == 1
    assert summary["bad_sectors"] == 1
    assert summary["unrecoverable_stripes"] == 0
    with pytest.raises(ValueError):
        SimulatedCluster(RAID5Code(n=4, r=4), num_arrays=0,
                         stripes_per_array=4)
