"""Vectorized Monte Carlo runner: statistics, determinism and the
cross-validation against the analytical MTTDL models (§7).

The acceptance properties: for exponential lifetimes the Monte Carlo
MTTDL agrees with ``repro.reliability.mttdl`` within 3σ confidence
bounds -- for the RS/RAID-5 baseline (Eq. 10) *and* for m >= 2
geometries against the general Markov chain -- and the vectorized
m >= 2 path statistically matches the event engine on an identical
scenario.
"""

import math

import numpy as np
import pytest

from repro.codes.raid import RAID5Code
from repro.codes.reed_solomon import ReedSolomonStripeCode
from repro.codes.sd import SDCode
from repro.codes.stair_adapter import StairStripeCode
from repro.reliability.markov import (
    mttdl_arr_closed_form,
    mttdl_arr_m_parity,
    mttdl_arr_two_parity,
)
from repro.reliability.mttdl import (
    CodeReliability,
    SystemParameters,
    mttdl_array,
    mttdl_array_general,
    p_array,
)
from repro.reliability.sector_models import IndependentSectorModel
from repro.sim.events import ClusterSimulation, Scenario
from repro.sim.lifetimes import (
    BiasedLifetime,
    ExponentialLifetime,
    ExponentialRepair,
    WeibullLifetime,
)
from repro.sim.montecarlo import (
    MonteCarloResult,
    code_reliability_from_code,
    simulate_array_lifetimes,
    simulate_cluster_lifetimes,
    simulate_code_mttdl,
)

PARAMS = SystemParameters()  # the paper's defaults: n=8, 1/λ=5e5h, 1/μ=17.8h


# --------------------------------------------------------------------------- #
# Cross-validation against the analytical models (acceptance criterion)
# --------------------------------------------------------------------------- #
def test_raid5_mttdl_agrees_with_analytic_within_3_sigma():
    """RS/RAID-5, exponential lifetimes, paper parameters."""
    model = IndependentSectorModel.from_p_bit(1e-12, PARAMS.r,
                                              PARAMS.sector_bytes)
    code = CodeReliability.reed_solomon()
    analytic = mttdl_array(code, PARAMS, model)
    result = simulate_code_mttdl(code, model, PARAMS, trials=2000, seed=0)
    assert result.losses == 2000
    assert result.agrees_with(analytic, z=3.0), (
        f"simulated {result.mttdl_hours:.4g}h, CI "
        f"{result.mttdl_confidence(3.0)}, analytic {analytic:.4g}h")
    # The estimate is also tight: well within 10% of the closed form.
    assert result.mttdl_hours == pytest.approx(analytic, rel=0.10)


def test_stair_mttdl_agrees_with_analytic_within_3_sigma():
    model = IndependentSectorModel.from_p_bit(1e-10, PARAMS.r,
                                              PARAMS.sector_bytes)
    code = CodeReliability.stair([1])
    analytic = mttdl_array(code, PARAMS, model)
    result = simulate_code_mttdl(code, model, PARAMS, trials=800, seed=1)
    assert result.agrees_with(analytic, z=3.0)


def test_pure_second_failure_race_matches_markov_closed_form():
    """p_arr = 0 isolates the (n-1)λ race of the Markov chain."""
    lam, mu = 1.0 / 100_000.0, 1.0 / 20.0
    analytic = mttdl_arr_closed_form(6, lam, mu, 0.0)
    result = simulate_array_lifetimes(
        6, p_arr=0.0, trials=600, seed=2,
        lifetime=ExponentialLifetime(100_000.0),
        repair=ExponentialRepair(20.0))
    assert result.agrees_with(analytic, z=3.0)


def test_certain_sector_loss_means_first_cycle_loss():
    """p_arr = 1: every critical episode ends in data loss, so the MTTDL
    is the first-failure time plus the short race segment."""
    result = simulate_array_lifetimes(
        8, p_arr=1.0, trials=1500, seed=3,
        lifetime=ExponentialLifetime(500_000.0))
    analytic = mttdl_arr_closed_form(8, 1 / 500_000.0, 1 / 17.8, 1.0)
    assert result.agrees_with(analytic, z=3.0)


def test_m2_pure_race_matches_general_markov_chain():
    """m = 2, p_arr = 0: the triple-overlap race against one-at-a-time
    rebuilds must match the general birth-death chain (which equals the
    dedicated two-parity chain)."""
    lam, mu = 1.0 / 50_000.0, 1.0 / 100.0
    analytic = mttdl_arr_m_parity(8, lam, mu, 0.0, m=2)
    assert analytic == pytest.approx(
        mttdl_arr_two_parity(8, lam, mu, 0.0), rel=1e-12)
    result = simulate_array_lifetimes(
        8, p_arr=0.0, trials=800, seed=20, m=2,
        lifetime=ExponentialLifetime(50_000.0),
        repair=ExponentialRepair(100.0))
    assert result.agrees_with(analytic, z=3.0), (
        f"simulated {result.mttdl_hours:.4g}h, CI "
        f"{result.mttdl_confidence(3.0)}, analytic {analytic:.4g}h")


def test_m2_critical_mode_sector_trip_matches_markov():
    """m = 2 with p_arr > 0: sector damage only trips in critical mode
    (two devices down), mirroring the Markov model's loss arc."""
    lam, mu = 1.0 / 50_000.0, 1.0 / 100.0
    analytic = mttdl_arr_two_parity(8, lam, mu, 0.05)
    result = simulate_array_lifetimes(
        8, p_arr=0.05, trials=800, seed=21, m=2,
        lifetime=ExponentialLifetime(50_000.0),
        repair=ExponentialRepair(100.0))
    assert result.agrees_with(analytic, z=3.0)


def test_m3_lane_machine_matches_general_markov_chain():
    """The lane machine is general in m, not special-cased to 2."""
    lam, mu = 1.0 / 5_000.0, 1.0 / 200.0
    analytic = mttdl_arr_m_parity(8, lam, mu, 0.1, m=3)
    result = simulate_array_lifetimes(
        8, p_arr=0.1, trials=600, seed=22, m=3,
        lifetime=ExponentialLifetime(5_000.0),
        repair=ExponentialRepair(200.0))
    assert result.agrees_with(analytic, z=3.0)


def test_sd_m2_code_mttdl_agrees_with_general_analytic():
    """SD(n=8, r=16, m=2, s=2) through the full simulate_code_mttdl
    bridge: P_arr from the SD coverage (Eq. 11 with m = 2), dynamics
    from the m = 2 lane machine, reference from the general chain.  Uses
    an accelerated-failure regime -- with the paper's 1/λ = 500,000 h a
    double-fault MTTDL is ~1e12 h, intractable for direct Monte Carlo.
    """
    params = SystemParameters(m=2, mean_time_to_failure_hours=20_000.0,
                              mean_time_to_rebuild_hours=200.0)
    model = IndependentSectorModel.from_p_bit(1e-10, params.r,
                                              params.sector_bytes)
    code = SDCode(n=8, r=16, m=2, s=2)
    analytic = mttdl_array_general(CodeReliability.sd(2), params, model)
    result = simulate_code_mttdl(code, model, params, trials=800, seed=23)
    assert result.losses == 800
    assert result.metadata["m"] == 2
    assert result.agrees_with(analytic, z=3.0)


def test_m2_vectorized_agrees_with_event_engine_on_same_scenario():
    """Cross-validation of the two engines on one identical m = 2
    scenario (SD geometry, pure device-failure race, identical λ and μ,
    both runs seeded from the same root).  The engines draw their random
    variates in different orders, so the assertion is statistical --
    the two MTTDL estimates must agree within 3σ of their combined
    standard error -- and both must bracket the Markov value.
    """
    mttf, repair_mean, trials = 2_000.0, 200.0, 250
    code = SDCode(n=8, r=4, m=2, s=2)
    vectorized = simulate_cluster_lifetimes(
        8, 1, p_arr=0.0, trials=trials, seed=24, m=2,
        lifetime=ExponentialLifetime(mttf),
        repair=ExponentialRepair(repair_mean))
    scenario = Scenario(
        code=code, num_arrays=1, stripes_per_array=4,
        lifetime=ExponentialLifetime(mttf),
        repair=ExponentialRepair(repair_mean),
        sector_errors=None, scrub_interval_hours=None,
        horizon_hours=1e9)
    root = np.random.default_rng(24)
    event_times = []
    for _ in range(trials):
        run = ClusterSimulation(
            scenario, np.random.default_rng(root.integers(2 ** 63))).run()
        assert run.lost_data, "horizon must not censor this regime"
        event_times.append(run.time_to_data_loss)
    event_times = np.asarray(event_times)

    sim_mean = vectorized.mttdl_hours
    ev_mean = float(event_times.mean())
    combined_se = math.hypot(
        vectorized.mttdl_std_error,
        float(event_times.std(ddof=1)) / math.sqrt(trials))
    assert abs(sim_mean - ev_mean) <= 3.0 * combined_se, (
        f"vectorized {sim_mean:.4g}h vs event engine {ev_mean:.4g}h "
        f"(3 sigma = {3 * combined_se:.4g}h)")
    analytic = mttdl_arr_m_parity(8, 1.0 / mttf, 1.0 / repair_mean, 0.0, m=2)
    assert vectorized.agrees_with(analytic, z=3.0)
    assert abs(ev_mean - analytic) <= 3.0 * float(
        event_times.std(ddof=1)) / math.sqrt(trials)


def test_cluster_mttdl_scales_inversely_with_array_count():
    """min over N i.i.d. ~exponential array lifetimes → MTTDL / N."""
    single = simulate_array_lifetimes(8, p_arr=1e-3, trials=1200, seed=4)
    cluster = simulate_cluster_lifetimes(8, 10, p_arr=1e-3, trials=1200,
                                         seed=5)
    ratio = single.mttdl_hours / cluster.mttdl_hours
    assert ratio == pytest.approx(10.0, rel=0.15)


# --------------------------------------------------------------------------- #
# Determinism and performance-envelope sanity
# --------------------------------------------------------------------------- #
def test_seeded_runs_are_bit_identical():
    a = simulate_cluster_lifetimes(8, 13, p_arr=1e-4, trials=300, seed=9)
    b = simulate_cluster_lifetimes(8, 13, p_arr=1e-4, trials=300, seed=9)
    assert np.array_equal(a.times, b.times)
    c = simulate_cluster_lifetimes(8, 13, p_arr=1e-4, trials=300, seed=10)
    assert not np.array_equal(a.times, c.times)


def test_weibull_first_loss_matches_order_statistics():
    """With p_arr = 1 the first rebuild loses data, so the MTTDL is
    essentially E[min of n lifetimes] -- which for Weibull is again
    Weibull with scale shrunk by n^(-1/k).  Wear-out (k = 3) therefore
    *delays* the first loss relative to an exponential with equal mean,
    and the simulated value must match the closed-form order statistic.
    """
    import math
    shape, mean = 3.0, 10_000.0
    scale = mean / math.gamma(1.0 + 1.0 / shape)
    weibull = simulate_array_lifetimes(
        8, p_arr=1.0, trials=1500, seed=6,
        lifetime=WeibullLifetime(scale, shape))
    exponential = simulate_array_lifetimes(
        8, p_arr=1.0, trials=1500, seed=6,
        lifetime=ExponentialLifetime(mean))
    assert weibull.mttdl_hours > exponential.mttdl_hours
    expected_min = scale * 8 ** (-1.0 / shape) * math.gamma(1.0 + 1.0 / shape)
    # The short rebuild segment (~17.8h) adds a little on top.
    assert weibull.mttdl_hours == pytest.approx(expected_min, rel=0.05)


def test_horizon_censors_trials():
    result = simulate_array_lifetimes(8, p_arr=0.5, trials=400, seed=7,
                                      horizon_hours=100_000.0)
    assert result.losses < result.trials
    assert np.isinf(result.times).sum() == result.trials - result.losses
    with pytest.raises(ValueError):
        _ = result.mttdl_hours  # censored mean would be biased
    p, lo, hi = result.probability_of_loss_by(100_000.0)
    assert 0.0 < lo < p < hi < 1.0
    with pytest.raises(ValueError):
        result.probability_of_loss_by(200_000.0)


def test_input_validation():
    with pytest.raises(ValueError):
        simulate_array_lifetimes(1, p_arr=0.1, trials=10)
    with pytest.raises(ValueError):
        simulate_array_lifetimes(8, p_arr=1.5, trials=10)
    with pytest.raises(ValueError):
        simulate_array_lifetimes(8, p_arr=0.1, trials=0)
    with pytest.raises(ValueError):
        simulate_array_lifetimes(8, p_arr=0.1, trials=10, m=0)
    with pytest.raises(ValueError):
        # n must exceed m: an 8-device array cannot tolerate 8 failures.
        simulate_array_lifetimes(8, p_arr=0.1, trials=10, m=8)
    empty = MonteCarloResult(np.array([np.inf, np.inf]))
    with pytest.raises(ValueError):
        _ = empty.mttdl_hours


def test_rejects_empty_cluster():
    """num_arrays = 0 used to simulate an 'immortal' cluster (no lanes,
    no losses, every trial censored) instead of failing fast."""
    with pytest.raises(ValueError, match="num_arrays"):
        simulate_cluster_lifetimes(8, 0, p_arr=0.1, trials=10)
    with pytest.raises(ValueError, match="num_arrays"):
        simulate_cluster_lifetimes(8, -3, p_arr=0.1, trials=10)


def test_confidence_interval_clamped_at_zero():
    """Small samples can push mean - z*se below zero; time to data loss
    is nonnegative, so the interval must not."""
    spread = MonteCarloResult(np.array([1.0, 1000.0]))
    lo, hi = spread.mttdl_confidence(z=3.0)
    assert lo == 0.0
    assert hi > spread.mttdl_hours
    # agrees_with stays consistent with the clamped interval.
    assert spread.agrees_with(0.0, z=3.0)
    assert not spread.agrees_with(hi + 1.0, z=3.0)


# --------------------------------------------------------------------------- #
# Importance-weighted runs (BiasedLifetime threading)
# --------------------------------------------------------------------------- #
def test_mildly_biased_run_matches_analytic_within_3_sigma():
    """Lifetimes drawn from a mildly accelerated proposal, every draw
    scored with its density ratio: the weighted MTTDL must still agree
    with the closed form.  p_arr = 1 keeps trials to a couple of events
    each -- full-draw scoring compounds one likelihood ratio per draw,
    so it is only meaningful for short trials and mild acceleration
    (long rare-event horizons belong to repro.sim.rare and its adapted
    per-cycle scoring)."""
    analytic = mttdl_arr_closed_form(8, 1 / 500_000.0, 1 / 17.8, 1.0)
    biased = BiasedLifetime.accelerated(ExponentialLifetime(500_000.0), 1.3)
    result = simulate_array_lifetimes(
        8, p_arr=1.0, trials=3000, seed=40, lifetime=biased)
    assert result.log_weights is not None
    assert result.log_weights.shape == (3000,)
    assert result.agrees_with(analytic, z=3.0), (
        f"weighted {result.mttdl_hours:.4g}h, CI "
        f"{result.mttdl_confidence(3.0)}, analytic {analytic:.4g}h")
    # Weighting costs effective samples but must keep a healthy share.
    assert result.effective_sample_size < result.trials
    assert result.effective_sample_size > 0.1 * result.trials
    assert "effective_sample_size" in result.summary()


def test_weighted_probability_of_loss_corrects_for_the_proposal():
    """A biased run observes *more* losses by any horizon than the
    target distribution would; probability_of_loss_by must weight them
    back down, and its interval must widen to the effective sample
    size.  Reference: an unweighted run of the same target model."""
    horizon = 2_000.0
    target = ExponentialLifetime(5_000.0)
    plain = simulate_array_lifetimes(
        8, p_arr=0.3, trials=8000, seed=50, lifetime=target,
        repair=ExponentialRepair(100.0), horizon_hours=horizon)
    biased = simulate_array_lifetimes(
        8, p_arr=0.3, trials=8000, seed=51,
        lifetime=BiasedLifetime.accelerated(target, 1.5),
        repair=ExponentialRepair(100.0), horizon_hours=horizon)
    p_plain, lo_plain, hi_plain = plain.probability_of_loss_by(horizon)
    p_biased, lo_biased, hi_biased = biased.probability_of_loss_by(horizon)
    # Raw biased loss fraction is visibly inflated over the target...
    raw = np.isfinite(biased.times).mean()
    assert raw > p_plain + (hi_plain - p_plain)
    # ...but the weighted estimate agrees with the unweighted run (the
    # two independent runs' 3-sigma intervals overlap), with a wider
    # (ESS-based) interval; the raw fraction falls outside it.
    assert lo_biased <= hi_plain and lo_plain <= hi_biased
    assert (hi_biased - lo_biased) > (hi_plain - lo_plain)
    assert raw > hi_biased


def test_unbiased_run_has_uniform_weights():
    result = simulate_array_lifetimes(8, p_arr=0.5, trials=50, seed=41)
    assert result.log_weights is None
    assert np.all(result.weights == 1.0)
    assert result.effective_sample_size == result.trials
    assert "effective_sample_size" not in result.summary()


# --------------------------------------------------------------------------- #
# Bridge to the codes / reliability layers
# --------------------------------------------------------------------------- #
def test_code_reliability_from_code_mapping():
    assert code_reliability_from_code(RAID5Code(n=5, r=4)).kind == "rs"
    assert code_reliability_from_code(
        ReedSolomonStripeCode(n=8, r=4, m=2)).kind == "rs"
    stair = code_reliability_from_code(
        StairStripeCode(n=8, r=4, m=2, e=(1, 1, 2)))
    assert stair.kind == "stair" and stair.e == (1, 1, 2) and stair.s == 4
    sd = code_reliability_from_code(SDCode(n=8, r=4, m=1, s=2))
    assert sd.kind == "sd" and sd.s == 2


def test_simulate_code_mttdl_accepts_concrete_codes():
    model = IndependentSectorModel.from_p_bit(1e-12, 4, 512)
    params = SystemParameters(n=5, r=4)
    code = RAID5Code(n=5, r=4)
    result = simulate_code_mttdl(code, model, params, trials=200, seed=8)
    assert result.metadata["code"] == "RS"
    assert result.metadata["p_arr"] == pytest.approx(
        p_array(CodeReliability.reed_solomon(), params, model))
    assert result.losses == 200


def test_simulate_code_mttdl_rejects_m_mismatch():
    """A concrete m = 2 code with m = 1 SystemParameters (or vice
    versa) would silently mix two different fault-tolerance levels
    between the sector model and the lane dynamics."""
    model = IndependentSectorModel.from_p_bit(1e-12, 16, 512)
    code = ReedSolomonStripeCode(n=8, r=16, m=2)
    with pytest.raises(ValueError, match="m = 2.*m = 1"):
        simulate_code_mttdl(code, model, SystemParameters(), trials=10,
                            seed=0)
    with pytest.raises(ValueError, match="m = 1.*m = 2"):
        simulate_code_mttdl(ReedSolomonStripeCode(n=8, r=16, m=1), model,
                            SystemParameters(m=2), trials=10, seed=0)


def test_simulate_code_mttdl_rejects_geometry_mismatch():
    """A concrete code whose (n, r) differ from SystemParameters would
    silently mix two different array shapes."""
    model = IndependentSectorModel.from_p_bit(1e-12, 16, 512)
    with pytest.raises(ValueError, match="geometry"):
        simulate_code_mttdl(RAID5Code(n=5, r=4), model,
                            SystemParameters(), trials=10, seed=0)


def test_wilson_interval_is_sane():
    times = np.array([10.0, 20.0, np.inf, np.inf])
    result = MonteCarloResult(times, horizon_hours=50.0)
    p, lo, hi = result.probability_of_loss_by(50.0)
    assert p == 0.5
    assert 0.0 <= lo < 0.5 < hi <= 1.0


# --------------------------------------------------------------------------- #
# Correlated failure domains in the lane machine
# --------------------------------------------------------------------------- #
from repro.sim.domains import FailureDomains  # noqa: E402


def test_inert_domains_are_bitwise_identical_to_independent_path():
    """The independent limit is exact, not just statistical: an inert
    spec (zero shock rates, no batch wear) must consume the identical
    random stream and produce identical lifetimes."""
    kwargs = dict(lifetime=ExponentialLifetime(20_000.0),
                  repair=ExponentialRepair(200.0))
    plain = simulate_cluster_lifetimes(8, 3, 0.05, 200, seed=11, m=2,
                                       **kwargs)
    inert = simulate_cluster_lifetimes(
        8, 3, 0.05, 200, seed=11, m=2,
        domains=FailureDomains(racks=4, batch_fraction=0.25), **kwargs)
    assert np.array_equal(plain.times, inert.times)


def test_single_device_shock_groups_match_chain_at_effective_rate():
    """Spread placement with racks = n makes every shock group one
    device: rigorously equivalent to raising the per-device failure
    rate from λ to λ + s, so the m-parity chain at λ + s is an exact
    anchor."""
    mttf, repair_hours, s = 20_000.0, 17.8, 1e-4
    result = simulate_array_lifetimes(
        8, 0.0, 3000, seed=0, m=1,
        lifetime=ExponentialLifetime(mttf),
        repair=ExponentialRepair(repair_hours),
        domains=FailureDomains(racks=8, rack_shock_rate_per_hour=s))
    anchor = mttdl_arr_m_parity(8, 1.0 / mttf + s, 1.0 / repair_hours,
                                0.0, 1)
    assert result.agrees_with(anchor, z=3.0), (
        result.mttdl_confidence(3.0), anchor)
    # And the drop against the independent baseline is statistically
    # unmistakable -- the independent MTTDL sits far above the CI.
    independent = mttdl_arr_m_parity(8, 1.0 / mttf, 1.0 / repair_hours,
                                     0.0, 1)
    assert result.mttdl_confidence(z=3.0)[1] < independent


def test_contiguous_kill_all_rack_is_bounded_by_shock_interarrival():
    """One rack holding the whole array, kill probability 1: the first
    shock is fatal, so the MTTDL must sit at (just below) 1/s."""
    s = 1e-3
    result = simulate_array_lifetimes(
        8, 0.0, 2000, seed=1, m=1,
        lifetime=ExponentialLifetime(1e9),   # intrinsic failures: never
        repair=ExponentialRepair(17.8),
        domains=FailureDomains(racks=1, rack_shock_rate_per_hour=s,
                               placement="contiguous"))
    assert result.agrees_with(1.0 / s, z=3.0), result.mttdl_confidence(3.0)


def test_partial_kill_probability_shocks_agree_with_event_engine():
    """Shocks that kill each member only with probability p exercise
    the binomial-kill path; the event engine plays the same process
    device by device, so the two engines must agree statistically
    (m = 1 keeps the rebuild semantics identical)."""
    domains = FailureDomains(racks=2, rack_shock_rate_per_hour=2e-4,
                             rack_kill_probability=0.6)
    mttf, repair_hours = 50_000.0, 17.8
    vec = simulate_array_lifetimes(
        4, 0.0, 2500, seed=2, m=1,
        lifetime=ExponentialLifetime(mttf),
        repair=ExponentialRepair(repair_hours), domains=domains)
    scenario = Scenario(
        code=RAID5Code(n=4, r=16), num_arrays=1, stripes_per_array=8,
        lifetime=ExponentialLifetime(mttf),
        repair=ExponentialRepair(repair_hours),
        domains=domains, horizon_hours=1e9)
    root = np.random.default_rng(3)
    losses = []
    for _ in range(60):
        run = ClusterSimulation(
            scenario, np.random.default_rng(root.integers(2 ** 63))).run()
        assert run.lost_data
        losses.append(run.time_to_data_loss)
    event_mean = float(np.mean(losses))
    event_se = float(np.std(losses, ddof=1) / math.sqrt(len(losses)))
    gap = abs(vec.mttdl_hours - event_mean)
    assert gap <= 3.0 * math.hypot(vec.mttdl_std_error, event_se), (
        vec.mttdl_hours, event_mean)


def test_batch_wear_drags_mttdl_down():
    """Half the fleet aging 4x faster: the confidence intervals of the
    worn and pristine fleets must not even overlap."""
    kwargs = dict(lifetime=ExponentialLifetime(20_000.0),
                  repair=ExponentialRepair(17.8))
    base = simulate_array_lifetimes(8, 0.0, 1500, seed=4, m=1, **kwargs)
    worn = simulate_array_lifetimes(
        8, 0.0, 1500, seed=4, m=1,
        domains=FailureDomains(batch_fraction=0.5, batch_accel=4.0),
        **kwargs)
    assert worn.mttdl_confidence(z=3.0)[1] < base.mttdl_confidence(z=3.0)[0]


def test_batch_wear_rejects_biased_lifetime_proposals():
    """Full-draw biased scoring would weight the wrong density for
    batch-accelerated devices; the lane machine must refuse."""
    biased = BiasedLifetime.accelerated(ExponentialLifetime(20_000.0), 1.5)
    with pytest.raises(ValueError, match="batch-accelerated"):
        simulate_array_lifetimes(
            8, 0.0, 10, seed=0, m=1, lifetime=biased,
            domains=FailureDomains(batch_fraction=0.5, batch_accel=2.0))


def test_shocks_compose_with_biased_lifetimes():
    """Shock draws are never biased (weight 1), so mild lifetime
    biasing plus shocks must still match the λ + s anchor.  As in the
    mild-bias test above, p_arr = 1 keeps trials to a couple of events
    each -- the only regime where full-draw scoring is meaningful."""
    mttf, repair_hours, s = 500_000.0, 17.8, 2e-6
    biased = BiasedLifetime.accelerated(ExponentialLifetime(mttf), 1.3)
    result = simulate_array_lifetimes(
        8, 1.0, 3000, seed=0, m=1, lifetime=biased,
        repair=ExponentialRepair(repair_hours),
        domains=FailureDomains(racks=8, rack_shock_rate_per_hour=s))
    assert result.log_weights is not None
    assert result.effective_sample_size > 0.1 * result.trials
    anchor = mttdl_arr_closed_form(8, 1.0 / mttf + s, 1.0 / repair_hours,
                                   1.0)
    assert result.agrees_with(anchor, z=3.0), (
        result.mttdl_confidence(3.0), anchor)


def test_multi_device_shock_can_exceed_m_outright():
    """A rack shock killing a whole group beyond m loses data at the
    shock instant -- with intrinsic failures disabled, every loss time
    is a shock arrival."""
    result = simulate_array_lifetimes(
        8, 0.0, 500, seed=6, m=2,
        lifetime=ExponentialLifetime(1e9),
        repair=ExponentialRepair(17.8),
        domains=FailureDomains(racks=2, rack_shock_rate_per_hour=1e-3))
    # Groups of 4 devices >= m + 1 = 3: first shock is always fatal,
    # with two racks racing at rate s each.
    assert result.agrees_with(1.0 / 2e-3, z=3.0), (
        result.mttdl_confidence(3.0))
