"""Distribution sanity for the lifetime / repair / sector-error models."""

import math

import numpy as np
import pytest

from repro.sim.lifetimes import (
    BiasedLifetime,
    DeterministicRepair,
    ExponentialLifetime,
    ExponentialRepair,
    SectorErrorProcess,
    WeibullLifetime,
)
from repro.reliability.sector_models import sector_failure_probability


def test_exponential_lifetime_mean_and_rate():
    model = ExponentialLifetime(500_000.0)
    assert model.mean_hours == 500_000.0
    assert model.rate == pytest.approx(1.0 / 500_000.0)
    samples = model.sample(np.random.default_rng(0), 200_000)
    assert samples.shape == (200_000,)
    assert samples.mean() == pytest.approx(500_000.0, rel=0.02)


def test_weibull_mean_matches_gamma_formula():
    model = WeibullLifetime(scale_hours=1000.0, shape=1.5,
                            location_hours=50.0)
    expected = 50.0 + 1000.0 * math.gamma(1 + 1 / 1.5)
    assert model.mean_hours == pytest.approx(expected)
    samples = model.sample(np.random.default_rng(1), 200_000)
    assert samples.min() >= 50.0
    assert samples.mean() == pytest.approx(expected, rel=0.02)


def test_weibull_shape_one_is_exponential():
    weibull = WeibullLifetime(scale_hours=500.0, shape=1.0)
    assert weibull.mean_hours == pytest.approx(500.0)
    samples = weibull.sample(np.random.default_rng(2), 100_000)
    # Exponential: std == mean.
    assert samples.std() == pytest.approx(samples.mean(), rel=0.05)


def test_exponential_log_pdf_and_survival():
    model = ExponentialLifetime(100.0)
    x = np.array([0.0, 50.0, 100.0])
    np.testing.assert_allclose(model.log_pdf(x),
                               -math.log(100.0) - x / 100.0)
    np.testing.assert_allclose(model.log_survival(x), -x / 100.0)
    assert model.log_pdf(-1.0) == -math.inf
    assert model.log_survival(-1.0) == 0.0
    # pdf integrates to 1 (trapezoid over a wide grid)
    grid = np.linspace(0.0, 2000.0, 40_001)
    density = np.exp(model.log_pdf(grid))
    integral = float(((density[1:] + density[:-1]) / 2.0
                      * np.diff(grid)).sum())
    assert integral == pytest.approx(1.0, abs=1e-6)


def test_weibull_log_pdf_and_survival():
    model = WeibullLifetime(scale_hours=200.0, shape=2.0,
                            location_hours=10.0)
    x = np.array([50.0, 150.0, 400.0])
    z = (x - 10.0) / 200.0
    np.testing.assert_allclose(model.log_survival(x), -z ** 2.0)
    np.testing.assert_allclose(
        model.log_pdf(x),
        np.log(2.0 / 200.0) + np.log(z) - z ** 2.0)
    # before the failure-free period: density 0, survival certain
    assert model.log_pdf(5.0) == -math.inf
    assert model.log_survival(5.0) == 0.0
    # shape 1 degenerates to the exponential formulas
    exp_like = WeibullLifetime(scale_hours=500.0, shape=1.0)
    reference = ExponentialLifetime(500.0)
    np.testing.assert_allclose(exp_like.log_pdf(x), reference.log_pdf(x))
    np.testing.assert_allclose(exp_like.log_survival(x),
                               reference.log_survival(x))


def test_biased_lifetime_samples_proposal_scores_target():
    target = ExponentialLifetime(500_000.0)
    biased = BiasedLifetime.accelerated(target, 4000.0)
    assert biased.acceleration == pytest.approx(4000.0)
    assert biased.mean_hours == pytest.approx(500_000.0 / 4000.0)
    draws = biased.sample(np.random.default_rng(0), 100_000)
    assert draws.mean() == pytest.approx(500_000.0 / 4000.0, rel=0.02)
    # log-likelihood ratios: density ratio for observed failures,
    # survival ratio for devices observed alive at a given age
    x = np.array([10.0, 100.0])
    np.testing.assert_allclose(
        biased.log_weight(x),
        target.log_pdf(x) - biased.proposal.log_pdf(x))
    np.testing.assert_allclose(
        biased.log_weight_survival(x),
        target.log_survival(x) - biased.proposal.log_survival(x))
    # Importance weights average to 1 under the proposal (unbiasedness)
    # -- checked at mild acceleration; at 4000x the same expectation is
    # dominated by tail draws no finite sample contains, which is
    # exactly why full-draw scoring cannot power the rare-event path.
    mild = BiasedLifetime.accelerated(target, 1.5)
    w = np.exp(mild.log_weight(mild.sample(
        np.random.default_rng(1), 200_000)))
    assert w.mean() == pytest.approx(1.0, rel=0.05)


def test_biased_lifetime_weibull_acceleration_and_explicit_pair():
    target = WeibullLifetime(scale_hours=1000.0, shape=2.0,
                             location_hours=5.0)
    biased = BiasedLifetime.accelerated(target, 10.0)
    assert biased.proposal.scale_hours == pytest.approx(100.0)
    assert biased.proposal.shape == 2.0
    assert biased.proposal.location_hours == 5.0
    explicit = BiasedLifetime(ExponentialLifetime(100.0),
                              ExponentialLifetime(25.0))
    assert explicit.acceleration == pytest.approx(4.0)
    with pytest.raises(ValueError):
        BiasedLifetime.accelerated(target, 0.0)
    with pytest.raises(TypeError):
        BiasedLifetime.accelerated(explicit, 2.0)  # no rule for wrappers


def test_repair_models():
    exp = ExponentialRepair(17.8)
    assert exp.mean_hours == 17.8
    assert exp.rate == pytest.approx(1.0 / 17.8)
    det = DeterministicRepair(12.0)
    assert det.mean_hours == 12.0
    draws = det.sample(np.random.default_rng(0), 5)
    assert np.all(draws == 12.0)


def test_model_validation():
    with pytest.raises(ValueError):
        ExponentialLifetime(0.0)
    with pytest.raises(ValueError):
        WeibullLifetime(-1.0, 1.0)
    with pytest.raises(ValueError):
        WeibullLifetime(1.0, 0.0)
    with pytest.raises(ValueError):
        ExponentialRepair(-1.0)
    with pytest.raises(ValueError):
        DeterministicRepair(0.0)
    with pytest.raises(ValueError):
        SectorErrorProcess(-1.0)


def test_sector_error_process_steady_state_rate():
    """from_p_bit matches P_sec ~ rate_per_sector * T / 2."""
    p_bit, sectors, scrub = 1e-12, 4096, 168.0
    process = SectorErrorProcess.from_p_bit(p_bit, sectors, scrub)
    p_sec = sector_failure_probability(p_bit)
    expected_rate = 2.0 * p_sec / scrub * sectors
    assert process.rate_per_device_hour == pytest.approx(expected_rate)


def test_sector_error_process_arrivals():
    process = SectorErrorProcess(0.5)
    rng = np.random.default_rng(3)
    gaps = np.array([process.next_arrival(rng, 10.0) - 10.0
                     for _ in range(20_000)])
    assert gaps.min() > 0
    assert gaps.mean() == pytest.approx(2.0, rel=0.05)
    silent = SectorErrorProcess(0.0)
    assert math.isinf(silent.next_arrival(rng, 0.0))
