"""Distribution sanity for the lifetime / repair / sector-error models."""

import math

import numpy as np
import pytest

from repro.sim.lifetimes import (
    DeterministicRepair,
    ExponentialLifetime,
    ExponentialRepair,
    SectorErrorProcess,
    WeibullLifetime,
)
from repro.reliability.sector_models import sector_failure_probability


def test_exponential_lifetime_mean_and_rate():
    model = ExponentialLifetime(500_000.0)
    assert model.mean_hours == 500_000.0
    assert model.rate == pytest.approx(1.0 / 500_000.0)
    samples = model.sample(np.random.default_rng(0), 200_000)
    assert samples.shape == (200_000,)
    assert samples.mean() == pytest.approx(500_000.0, rel=0.02)


def test_weibull_mean_matches_gamma_formula():
    model = WeibullLifetime(scale_hours=1000.0, shape=1.5,
                            location_hours=50.0)
    expected = 50.0 + 1000.0 * math.gamma(1 + 1 / 1.5)
    assert model.mean_hours == pytest.approx(expected)
    samples = model.sample(np.random.default_rng(1), 200_000)
    assert samples.min() >= 50.0
    assert samples.mean() == pytest.approx(expected, rel=0.02)


def test_weibull_shape_one_is_exponential():
    weibull = WeibullLifetime(scale_hours=500.0, shape=1.0)
    assert weibull.mean_hours == pytest.approx(500.0)
    samples = weibull.sample(np.random.default_rng(2), 100_000)
    # Exponential: std == mean.
    assert samples.std() == pytest.approx(samples.mean(), rel=0.05)


def test_repair_models():
    exp = ExponentialRepair(17.8)
    assert exp.mean_hours == 17.8
    assert exp.rate == pytest.approx(1.0 / 17.8)
    det = DeterministicRepair(12.0)
    assert det.mean_hours == 12.0
    draws = det.sample(np.random.default_rng(0), 5)
    assert np.all(draws == 12.0)


def test_model_validation():
    with pytest.raises(ValueError):
        ExponentialLifetime(0.0)
    with pytest.raises(ValueError):
        WeibullLifetime(-1.0, 1.0)
    with pytest.raises(ValueError):
        WeibullLifetime(1.0, 0.0)
    with pytest.raises(ValueError):
        ExponentialRepair(-1.0)
    with pytest.raises(ValueError):
        DeterministicRepair(0.0)
    with pytest.raises(ValueError):
        SectorErrorProcess(-1.0)


def test_sector_error_process_steady_state_rate():
    """from_p_bit matches P_sec ~ rate_per_sector * T / 2."""
    p_bit, sectors, scrub = 1e-12, 4096, 168.0
    process = SectorErrorProcess.from_p_bit(p_bit, sectors, scrub)
    p_sec = sector_failure_probability(p_bit)
    expected_rate = 2.0 * p_sec / scrub * sectors
    assert process.rate_per_device_hour == pytest.approx(expected_rate)


def test_sector_error_process_arrivals():
    process = SectorErrorProcess(0.5)
    rng = np.random.default_rng(3)
    gaps = np.array([process.next_arrival(rng, 10.0) - 10.0
                     for _ in range(20_000)])
    assert gaps.min() > 0
    assert gaps.mean() == pytest.approx(2.0, rel=0.05)
    silent = SectorErrorProcess(0.0)
    assert math.isinf(silent.next_arrival(rng, 0.0))
