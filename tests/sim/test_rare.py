"""Rare-event estimator: unbiasedness against the Markov chains, the
paper-regime configurations direct Monte Carlo cannot reach, biasing
schedule and weight diagnostics.

The acceptance property: at the paper's true 1/λ = 500,000 h -- where
the direct batch runner dies in its ``MAX_ROUNDS`` safety valve -- the
importance-sampled MTTDL agrees with the general birth-death chain of
:func:`repro.reliability.markov.mttdl_arr_m_parity` within 3σ.
"""

import math

import numpy as np
import pytest

from repro.codes.sd import SDCode
from repro.reliability.markov import (
    mttdl_arr_closed_form,
    mttdl_arr_m_parity,
)
from repro.reliability.mttdl import (
    CodeReliability,
    SystemParameters,
    mttdl_array_general,
    p_array,
)
from repro.reliability.sector_models import IndependentSectorModel
from repro.sim.lifetimes import (
    DeterministicRepair,
    ExponentialLifetime,
    ExponentialRepair,
    WeibullLifetime,
)
from repro.sim.montecarlo import simulate_array_lifetimes
from repro.sim.rare import (
    RareEventResult,
    balanced_acceleration,
    direct_mc_is_tractable,
    estimate_rare_mttdl,
    projected_direct_rounds,
    rare_event_code_mttdl,
)


# --------------------------------------------------------------------------- #
# Agreement with direct Monte Carlo and the Markov chains
# --------------------------------------------------------------------------- #
def test_matches_direct_mc_on_fast_converging_config():
    """On a configuration direct MC handles comfortably, both estimators
    must bracket the same Markov value -- and each other."""
    n, m, parr, mttf, repair_mean = 8, 2, 0.05, 50_000.0, 100.0
    analytic = mttdl_arr_m_parity(n, 1.0 / mttf, 1.0 / repair_mean, parr, m)
    direct = simulate_array_lifetimes(
        n, p_arr=parr, trials=800, seed=21, m=m,
        lifetime=ExponentialLifetime(mttf),
        repair=ExponentialRepair(repair_mean))
    rare = estimate_rare_mttdl(n, parr, m=m, seed=21,
                               lifetime=ExponentialLifetime(mttf),
                               repair=ExponentialRepair(repair_mean))
    assert direct.agrees_with(analytic, z=3.0)
    assert rare.agrees_with(analytic, z=3.0)
    combined = math.hypot(direct.mttdl_std_error, rare.mttdl_std_error)
    assert abs(direct.mttdl_hours - rare.mttdl_hours) <= 3.0 * combined


def test_paper_regime_m2_agrees_where_direct_mc_raises(monkeypatch):
    """The headline fix: SD(m=2) at the true 1/λ = 500,000 h.  Direct
    simulation trips the MAX_ROUNDS valve (shrunk here so the test does
    not crawl through 1e7 real rounds first); the rare-event estimator
    completes and agrees with the general chain within 3σ."""
    params = SystemParameters(m=2)
    model = IndependentSectorModel.from_p_bit(1e-10, params.r,
                                              params.sector_bytes)
    code = SDCode(n=8, r=16, m=2, s=2)
    parr = p_array(CodeReliability.sd(2), params, model)

    import repro.sim.montecarlo as mc
    monkeypatch.setattr(mc, "MAX_ROUNDS", 2_000)
    with pytest.raises(RuntimeError, match="rare-event"):
        simulate_array_lifetimes(8, p_arr=parr, trials=50, seed=0, m=2)

    analytic = mttdl_array_general(CodeReliability.sd(2), params, model)
    result = rare_event_code_mttdl(code, model, params, seed=30)
    assert result.mttdl_hours > 1e11  # the ~1e12 h regime, reached
    assert result.agrees_with(analytic, z=3.0), (
        f"rare-event {result.mttdl_hours:.4g}h, CI "
        f"{result.mttdl_confidence(3.0)}, analytic {analytic:.4g}h")
    assert result.relative_std_error <= 0.02
    assert result.metadata["code"] == "SD s=2"


def test_paper_regime_m3_agrees_with_general_chain():
    """The estimator is general in m, not special-cased to 2."""
    lam, mu = 1.0 / 500_000.0, 1.0 / 17.8
    analytic = mttdl_arr_m_parity(8, lam, mu, 1e-6, m=3)
    result = estimate_rare_mttdl(8, 1e-6, m=3, seed=31)
    assert result.agrees_with(analytic, z=3.0)


def test_m1_closed_form_agreement():
    """At m = 1 the reference degenerates to the paper's Eq. 10."""
    analytic = mttdl_arr_closed_form(8, 1.0 / 500_000.0, 1.0 / 17.8, 1e-4)
    result = estimate_rare_mttdl(8, 1e-4, seed=32)
    assert result.agrees_with(analytic, z=3.0)


def test_pure_failure_route_with_p_arr_zero():
    """p_arr = 0 disables the sector-trip route entirely; loss happens
    only through the (m+1)-th concurrent failure."""
    lam, mu = 1.0 / 100_000.0, 1.0 / 20.0
    analytic = mttdl_arr_closed_form(6, lam, mu, 0.0)
    result = estimate_rare_mttdl(6, 0.0, seed=33,
                                 lifetime=ExponentialLifetime(100_000.0),
                                 repair=ExponentialRepair(20.0))
    assert result.trip_bias == 0.0
    assert result.agrees_with(analytic, z=3.0)


def test_trip_dominated_route_is_sampled():
    """When P_arr is far below the trip-bias floor, loss paths through
    the sector trip only exist because the Bernoulli is oversampled --
    the estimate must still match the chain."""
    lam, mu = 1.0 / 500_000.0, 1.0 / 17.8
    parr = 1e-3  # trip route dominates the (n-1)λ race at m = 1
    analytic = mttdl_arr_m_parity(8, lam, mu, parr, m=1)
    result = estimate_rare_mttdl(8, parr, seed=34)
    assert result.trip_bias == pytest.approx(0.05)
    assert result.agrees_with(analytic, z=3.0)


def test_deterministic_repair_beyond_the_markov_chain():
    """Non-exponential rebuilds are fine for the estimator (regeneration
    only needs memoryless *lifetimes*).  With deterministic rebuilds the
    M/D race differs from the M/M chain -- just sanity-check the result
    is finite, positive and internally consistent."""
    result = estimate_rare_mttdl(8, 1e-3, m=2, seed=35,
                                 lifetime=ExponentialLifetime(50_000.0),
                                 repair=DeterministicRepair(100.0))
    lo, hi = result.mttdl_confidence(z=3.0)
    assert 0.0 <= lo < result.mttdl_hours < hi < math.inf
    assert result.loss_cycles > 0


def test_cluster_mttdl_scales_inversely_with_array_count():
    one = estimate_rare_mttdl(8, 1e-4, seed=36)
    ten = estimate_rare_mttdl(8, 1e-4, seed=36, num_arrays=10)
    assert one.mttdl_hours / ten.mttdl_hours == pytest.approx(10.0)
    assert ten.num_arrays == 10


# --------------------------------------------------------------------------- #
# Determinism, stopping rule and diagnostics
# --------------------------------------------------------------------------- #
def test_seeded_runs_are_deterministic():
    a = estimate_rare_mttdl(8, 1e-6, m=2, seed=42)
    b = estimate_rare_mttdl(8, 1e-6, m=2, seed=42)
    assert a.mttdl_hours == b.mttdl_hours
    assert a.cycles == b.cycles
    c = estimate_rare_mttdl(8, 1e-6, m=2, seed=43)
    assert a.mttdl_hours != c.mttdl_hours


def test_variance_controlled_stopping():
    """A looser target stops after fewer cycles; both runs honour their
    requested precision."""
    tight = estimate_rare_mttdl(8, 1e-6, m=2, seed=44, target_rel_se=0.01,
                                batch_cycles=10_000)
    loose = estimate_rare_mttdl(8, 1e-6, m=2, seed=44, target_rel_se=0.10,
                                batch_cycles=10_000)
    assert loose.cycles < tight.cycles
    assert tight.relative_std_error <= 0.01
    assert loose.relative_std_error <= 0.10


def test_ess_and_loss_diagnostics_are_sane():
    result = estimate_rare_mttdl(8, 4.4e-9, m=2, seed=45)
    assert 0.0 < result.effective_sample_size <= result.cycles
    # Balanced biasing keeps the weights healthy: the ESS stays a
    # double-digit fraction of the cycle count even at P_arr ~ 1e-9.
    assert result.effective_sample_size >= 0.05 * result.cycles
    assert 0 < result.loss_cycles <= result.cycles
    assert 0.0 < result.loss_probability < 1.0
    assert result.mean_up_hours == pytest.approx(500_000.0 / 8)
    assert result.mean_busy_hours < result.mean_up_hours
    summary = result.summary()
    assert summary["m"] == 2 and summary["cycles"] == result.cycles


def test_confidence_interval_clamped_at_zero():
    result = RareEventResult(
        mttdl_hours=10.0, mttdl_std_error=20.0, cycles=10, loss_cycles=2,
        loss_probability=0.2, mean_up_hours=5.0, mean_busy_hours=1.0,
        effective_sample_size=8.0, acceleration=1.0, trip_bias=0.0)
    lo, hi = result.mttdl_confidence(z=3.0)
    assert lo == 0.0 and hi == 70.0
    assert result.agrees_with(0.0, z=3.0)


def test_balanced_acceleration_schedule():
    # paper parameters: θ = μ / ((n-1)λ) = 500000 / (7 * 17.8)
    assert balanced_acceleration(8, 500_000.0, 17.8) == pytest.approx(
        500_000.0 / (7 * 17.8))
    # already-balanced (or failure-dominated) races never decelerate
    assert balanced_acceleration(8, 100.0, 100.0) == 1.0


def test_explicit_biasing_overrides_stay_unbiased():
    lam, mu = 1.0 / 50_000.0, 1.0 / 100.0
    analytic = mttdl_arr_m_parity(8, lam, mu, 0.05, m=2)
    result = estimate_rare_mttdl(8, 0.05, m=2, seed=46,
                                 lifetime=ExponentialLifetime(50_000.0),
                                 repair=ExponentialRepair(100.0),
                                 acceleration=3.0, trip_bias=0.3)
    assert result.acceleration == 3.0 and result.trip_bias == 0.3
    assert result.agrees_with(analytic, z=3.0)


def test_tractability_heuristic():
    """The CLI's auto-selection: the paper's m = 2 point is hopeless for
    direct MC, the m = 1 point is comfortably tractable."""
    assert not direct_mc_is_tractable(1.17e12, 8, 500_000.0, trials=1000)
    assert direct_mc_is_tractable(1.79e8, 8, 500_000.0, trials=1000)
    assert projected_direct_rounds(1.17e12, 8, 500_000.0, 1000) > 1e8


# --------------------------------------------------------------------------- #
# Input validation
# --------------------------------------------------------------------------- #
def test_input_validation():
    with pytest.raises(ValueError):
        estimate_rare_mttdl(8, 0.1, m=0)
    with pytest.raises(ValueError):
        estimate_rare_mttdl(8, 0.1, m=8)
    with pytest.raises(ValueError):
        estimate_rare_mttdl(8, 1.5)
    with pytest.raises(ValueError):
        estimate_rare_mttdl(8, 0.1, num_arrays=0)
    with pytest.raises(ValueError):
        estimate_rare_mttdl(8, 0.1, target_rel_se=0.0)
    with pytest.raises(ValueError):
        estimate_rare_mttdl(8, 0.1, acceleration=-1.0)
    with pytest.raises(ValueError):
        estimate_rare_mttdl(8, 0.1, trip_bias=1.5)
    with pytest.raises(ValueError):
        # a zero trip proposal would never sample the trip route
        estimate_rare_mttdl(8, 0.1, trip_bias=0.0)
    with pytest.raises(ValueError, match="trip_bias = 1"):
        # a certain trip makes target-positive no-trip paths unreachable
        # under the proposal (no absolute continuity): silently biased
        estimate_rare_mttdl(8, 0.1, trip_bias=1.0)


def test_boundary_trip_schedules_stay_valid():
    """Boundary biasing schedules the validation permits must run, not
    crash: p_arr = 0 with an (oversampling, weight-0) trip proposal, and
    p_arr = 1 where the trip needs no bias at all."""
    lam, mu = 1.0 / 100_000.0, 1.0 / 20.0
    analytic = mttdl_arr_closed_form(6, lam, mu, 0.0)
    wasteful = estimate_rare_mttdl(6, 0.0, seed=47, trip_bias=0.3,
                                   lifetime=ExponentialLifetime(100_000.0),
                                   repair=ExponentialRepair(20.0))
    assert wasteful.agrees_with(analytic, z=3.0)
    certain = mttdl_arr_closed_form(8, 1 / 500_000.0, 1 / 17.8, 1.0)
    result = estimate_rare_mttdl(8, 1.0, seed=48)
    assert result.trip_bias == 1.0
    assert result.agrees_with(certain, z=3.0)


def test_rejects_non_exponential_lifetimes():
    with pytest.raises(TypeError, match="exponential"):
        estimate_rare_mttdl(8, 0.1, lifetime=WeibullLifetime(1000.0, 2.0))


def test_code_bridge_rejects_mismatches():
    model = IndependentSectorModel.from_p_bit(1e-12, 16, 512)
    with pytest.raises(ValueError, match="m = 2.*m = 1"):
        rare_event_code_mttdl(SDCode(n=8, r=16, m=2, s=2), model,
                              SystemParameters())
    with pytest.raises(ValueError, match="geometry"):
        rare_event_code_mttdl(SDCode(n=8, r=8, m=2, s=2), model,
                              SystemParameters(m=2))


# --------------------------------------------------------------------------- #
# Correlated failure domains in the regeneration-cycle estimator
# --------------------------------------------------------------------------- #
from repro.sim.domains import FailureDomains  # noqa: E402

PAPER_LIFE_H = 500_000.0
PAPER_REPAIR_H = 17.8


def test_inert_domains_agree_with_independent_estimator():
    """A spec with zero shock rates and no batch wear routes through
    the generalised per-device-rate machine, which must reproduce the
    independent analytic MTTDL at the paper's parameters."""
    result = estimate_rare_mttdl(
        8, 4.366e-9, m=2, seed=0,
        lifetime=ExponentialLifetime(PAPER_LIFE_H),
        repair=ExponentialRepair(PAPER_REPAIR_H),
        domains=FailureDomains(racks=4))
    anchor = mttdl_arr_m_parity(8, 1.0 / PAPER_LIFE_H,
                                1.0 / PAPER_REPAIR_H, 4.366e-9, 2)
    assert result.agrees_with(anchor, z=3.0), (
        result.mttdl_confidence(3.0), anchor)
    assert result.metadata["domains"].startswith("4 racks")


def test_single_device_shock_groups_match_chain_at_effective_rate():
    """Spread placement with racks = n at the paper's true 1/λ: each
    shock kills one device, so the chain at λ + s stays an exact anchor
    -- in a regime direct simulation cannot reach at all."""
    s = 2e-6
    result = estimate_rare_mttdl(
        8, 4.366e-9, m=2, seed=1,
        lifetime=ExponentialLifetime(PAPER_LIFE_H),
        repair=ExponentialRepair(PAPER_REPAIR_H),
        domains=FailureDomains(racks=8, rack_shock_rate_per_hour=s),
        target_rel_se=0.05, max_cycles=1_500_000)
    anchor = mttdl_arr_m_parity(8, 1.0 / PAPER_LIFE_H + s,
                                1.0 / PAPER_REPAIR_H, 4.366e-9, 2)
    assert result.agrees_with(anchor, z=3.0), (
        result.mttdl_confidence(3.0), anchor)
    assert result.mttdl_hours > 1e10    # still a rare-event regime
    # And the shocks cost a measurable amount of reliability.
    independent = mttdl_arr_m_parity(8, 1.0 / PAPER_LIFE_H,
                                     1.0 / PAPER_REPAIR_H, 4.366e-9, 2)
    assert result.mttdl_confidence(z=3.0)[1] < independent


def test_shock_dominant_kill_all_rack_matches_interarrival():
    """All devices in one rack, shocks far more frequent than intrinsic
    failures: the MTTDL is the shock interarrival time 1/s."""
    s = 1e-5
    result = estimate_rare_mttdl(
        8, 0.0, m=2, seed=2,
        lifetime=ExponentialLifetime(PAPER_LIFE_H),
        repair=ExponentialRepair(PAPER_REPAIR_H),
        domains=FailureDomains(racks=1, rack_shock_rate_per_hour=s,
                               placement="contiguous"))
    assert result.agrees_with(1.0 / s, z=3.0), (
        result.mttdl_confidence(3.0), 1.0 / s)
    assert result.loss_cycles > 0


def test_multi_kill_shocks_agree_with_direct_mc():
    """Shocks killing pairs (racks = 4, kill probability 0.7) at m = 2:
    no closed form exists, so the anchor is direct Monte Carlo on the
    identical spec in a tractable regime."""
    domains = FailureDomains(racks=4, rack_shock_rate_per_hour=5e-5,
                             rack_kill_probability=0.7)
    life = ExponentialLifetime(20_000.0)
    rep = ExponentialRepair(200.0)
    rare = estimate_rare_mttdl(8, 0.0, m=2, seed=5, lifetime=life,
                               repair=rep, domains=domains)
    direct = simulate_array_lifetimes(8, 0.0, 4000, seed=6, m=2,
                                      lifetime=life, repair=rep,
                                      domains=domains)
    gap = abs(rare.mttdl_hours - direct.mttdl_hours)
    assert gap <= 3.0 * math.hypot(rare.mttdl_std_error,
                                   direct.mttdl_std_error), (
        rare.mttdl_hours, direct.mttdl_hours)


def test_batch_wear_agrees_with_direct_mc():
    """Per-device rates (half the fleet at 3x λ) against direct Monte
    Carlo on the identical spec."""
    domains = FailureDomains(batch_fraction=0.5, batch_accel=3.0)
    life = ExponentialLifetime(20_000.0)
    rep = ExponentialRepair(17.8)
    rare = estimate_rare_mttdl(8, 0.0, m=1, seed=3, lifetime=life,
                               repair=rep, domains=domains)
    direct = simulate_array_lifetimes(8, 0.0, 4000, seed=4, m=1,
                                      lifetime=life, repair=rep,
                                      domains=domains)
    gap = abs(rare.mttdl_hours - direct.mttdl_hours)
    assert gap <= 3.0 * math.hypot(rare.mttdl_std_error,
                                   direct.mttdl_std_error), (
        rare.mttdl_hours, direct.mttdl_hours)
    # The worn fleet must be measurably worse than a pristine one.
    pristine = estimate_rare_mttdl(8, 0.0, m=1, seed=3, lifetime=life,
                                   repair=rep)
    assert rare.mttdl_hours < pristine.mttdl_hours


def test_shock_initiated_cycles_are_oversampled_but_reweighted():
    """With shocks orders of magnitude rarer than device failures, the
    initial-event biasing must still sample shock-initiated cycles (the
    catastrophic route) while keeping the estimate anchored."""
    s = 1e-8   # one rack shock per ~11,000 years -- yet it dominates loss
    result = estimate_rare_mttdl(
        8, 0.0, m=2, seed=7,
        lifetime=ExponentialLifetime(PAPER_LIFE_H),
        repair=ExponentialRepair(PAPER_REPAIR_H),
        domains=FailureDomains(racks=1, rack_shock_rate_per_hour=s,
                               placement="contiguous"),
        target_rel_se=0.05)
    # Kill-all shocks dominate: the true MTTDL is essentially 1/s,
    # about 100x below the shock-free m = 2 value.
    assert result.agrees_with(1.0 / s, z=3.0), (
        result.mttdl_confidence(3.0), 1.0 / s)


def test_domains_ess_stays_healthy():
    result = estimate_rare_mttdl(
        8, 4.366e-9, m=2, seed=8,
        lifetime=ExponentialLifetime(PAPER_LIFE_H),
        repair=ExponentialRepair(PAPER_REPAIR_H),
        domains=FailureDomains(racks=8, rack_shock_rate_per_hour=1e-6),
        target_rel_se=0.05, max_cycles=1_000_000)
    assert 0 < result.effective_sample_size <= result.cycles
    assert result.effective_sample_size > 0.01 * result.cycles


def test_domains_seeded_runs_are_deterministic():
    kwargs = dict(
        lifetime=ExponentialLifetime(PAPER_LIFE_H),
        repair=ExponentialRepair(PAPER_REPAIR_H),
        domains=FailureDomains(racks=4, rack_shock_rate_per_hour=1e-6),
        target_rel_se=0.05, max_cycles=200_000)
    first = estimate_rare_mttdl(8, 1e-8, m=2, seed=11, **kwargs)
    second = estimate_rare_mttdl(8, 1e-8, m=2, seed=11, **kwargs)
    assert first.mttdl_hours == second.mttdl_hours
    assert first.loss_cycles == second.loss_cycles


def test_domains_still_require_exponential_lifetimes():
    with pytest.raises(TypeError, match="exponential"):
        estimate_rare_mttdl(
            8, 0.0, m=1, lifetime=WeibullLifetime(1000.0, 2.0),
            domains=FailureDomains(racks=2,
                                   rack_shock_rate_per_hour=1e-5))


def test_rare_event_code_mttdl_threads_domains():
    params = SystemParameters(m=2)
    model = IndependentSectorModel.from_p_bit(1e-10, params.r,
                                              params.sector_bytes)
    code = SDCode(n=8, r=16, m=2, s=2)
    s = 2e-6
    shocked = rare_event_code_mttdl(
        code, model, params, seed=0,
        domains=FailureDomains(racks=8, rack_shock_rate_per_hour=s),
        target_rel_se=0.05, max_cycles=1_500_000)
    parr = p_array(CodeReliability.sd(2), params, model)
    anchor = mttdl_arr_m_parity(8, 1.0 / PAPER_LIFE_H + s,
                                1.0 / PAPER_REPAIR_H, parr, 2)
    assert shocked.agrees_with(anchor, z=3.0), (
        shocked.mttdl_confidence(3.0), anchor)
    assert "domains" in shocked.metadata
