"""The failure-domain spec: validation, membership, shock groups."""

import numpy as np
import pytest

from repro.sim.domains import FailureDomains, ShockGroup


def test_default_spec_is_inert():
    domains = FailureDomains()
    assert domains.is_independent
    assert not domains.has_shocks
    assert not domains.has_batch_wear
    assert domains.cluster_shock_groups(2, 8) == ()
    assert domains.array_shock_groups(8) == ()


def test_validation_rejects_bad_parameters():
    with pytest.raises(ValueError, match="racks"):
        FailureDomains(racks=0)
    with pytest.raises(ValueError, match="rack_shock_rate"):
        FailureDomains(rack_shock_rate_per_hour=-1.0)
    with pytest.raises(ValueError, match="kill_probability"):
        FailureDomains(rack_kill_probability=0.0)
    with pytest.raises(ValueError, match="kill_probability"):
        FailureDomains(enclosure_kill_probability=1.5)
    with pytest.raises(ValueError, match="batch_fraction"):
        FailureDomains(batch_fraction=1.2)
    with pytest.raises(ValueError, match="batch_accel"):
        FailureDomains(batch_accel=0.0)
    with pytest.raises(ValueError, match="placement"):
        FailureDomains(placement="diagonal")
    with pytest.raises(ValueError, match="enclosures_per_rack"):
        FailureDomains(enclosures_per_rack=0)


def test_spread_placement_stripes_arrays_across_racks():
    domains = FailureDomains(racks=4)
    racks = domains.rack_assignment(num_arrays=2, n=8)
    assert racks.shape == (2, 8)
    # Device d of array a lands in rack (a + d) % racks.
    assert racks[0].tolist() == [0, 1, 2, 3, 0, 1, 2, 3]
    assert racks[1].tolist() == [1, 2, 3, 0, 1, 2, 3, 0]
    # Each array touches every rack equally: a rack shock costs it at
    # most ceil(n / racks) devices.
    for a in range(2):
        counts = np.bincount(racks[a], minlength=4)
        assert counts.tolist() == [2, 2, 2, 2]


def test_contiguous_placement_confines_each_array_to_one_rack():
    domains = FailureDomains(racks=3, placement="contiguous")
    racks = domains.rack_assignment(num_arrays=4, n=5)
    for a in range(4):
        assert set(racks[a].tolist()) == {a % 3}


def test_cluster_shock_groups_share_racks_across_arrays():
    domains = FailureDomains(racks=4, rack_shock_rate_per_hour=1e-4)
    groups = domains.cluster_shock_groups(num_arrays=2, n=8)
    assert len(groups) == 4
    assert all(isinstance(g, ShockGroup) and g.level == "rack"
               for g in groups)
    # Under spread placement every rack holds devices of BOTH arrays --
    # the cross-array coupling only the event engine models.
    for g in groups:
        assert {a for a, _ in g.devices} == {0, 1}
        assert g.size == 4  # 2 devices per array per rack
    # All devices covered exactly once.
    all_members = [d for g in groups for d in g.devices]
    assert len(all_members) == len(set(all_members)) == 16


def test_array_shock_groups_are_the_single_array_marginal():
    domains = FailureDomains(racks=8, rack_shock_rate_per_hour=2e-5,
                             rack_kill_probability=0.5)
    groups = domains.array_shock_groups(8)
    assert len(groups) == 8
    assert all(g.devices == (d,) for d, g in enumerate(groups))
    assert all(g.rate_per_hour == 2e-5 for g in groups)
    # Kill rate thins the Poisson process by 1 - (1-p)^size.
    assert groups[0].kill_rate_per_hour == pytest.approx(2e-5 * 0.5)


def test_enclosures_subdivide_racks_round_robin():
    domains = FailureDomains(racks=2, enclosures_per_rack=2,
                             enclosure_shock_rate_per_hour=1e-5)
    enc = domains.enclosure_assignment(num_arrays=1, n=8)
    racks = domains.rack_assignment(num_arrays=1, n=8)
    # Enclosure ids are globally unique and nest inside the rack.
    assert (enc // 2 == racks).all()
    groups = domains.cluster_shock_groups(1, 8)
    assert {g.level for g in groups} == {"enclosure"}
    assert len(groups) == 4
    assert all(g.size == 2 for g in groups)


def test_rack_and_enclosure_groups_coexist():
    domains = FailureDomains(racks=2, rack_shock_rate_per_hour=1e-6,
                             enclosures_per_rack=2,
                             enclosure_shock_rate_per_hour=1e-5)
    levels = [g.level for g in domains.array_shock_groups(8)]
    assert levels.count("rack") == 2
    assert levels.count("enclosure") == 4


def test_batch_membership_is_deterministic_and_rounds():
    domains = FailureDomains(batch_fraction=0.25, batch_accel=3.0)
    assert domains.batch_devices(8) == (0, 1)
    assert domains.batch_devices(10) == (0, 1)  # round(2.5) = 2 (banker's)
    mult = domains.rate_multipliers(8)
    assert mult.tolist() == [3.0, 3.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]
    assert domains.has_batch_wear
    assert not FailureDomains(batch_fraction=0.5).has_batch_wear


def test_describe_mentions_active_layers():
    text = FailureDomains(racks=8, rack_shock_rate_per_hour=1e-4,
                          batch_fraction=0.25,
                          batch_accel=3.0).describe()
    assert "8 racks" in text
    assert "0.0001/h" in text
    assert "25%" in text
    assert "x3" in text
