"""Event queue ordering and the discrete-event cluster engine."""

import math

import numpy as np
import pytest

from repro.array.failures import BurstLengthDistribution
from repro.codes.raid import RAID5Code
from repro.sim.events import (
    ClusterSimulation,
    Event,
    EventQueue,
    EventType,
    Scenario,
)
from repro.sim.lifetimes import (
    DeterministicRepair,
    ExponentialLifetime,
    ExponentialRepair,
    SectorErrorProcess,
)


# --------------------------------------------------------------------------- #
# EventQueue
# --------------------------------------------------------------------------- #
def test_queue_orders_by_time_then_insertion():
    queue = EventQueue()
    queue.schedule(5.0, EventType.SCRUB, tag="late")
    queue.schedule(1.0, EventType.DEVICE_FAILURE, tag="early")
    queue.schedule(5.0, EventType.SECTOR_ERROR, tag="tie-second")
    assert len(queue) == 3
    drained = list(queue.drain())
    assert [e.payload["tag"] for e in drained] == [
        "early", "late", "tie-second"]
    assert [e.type for e in drained] == [
        EventType.DEVICE_FAILURE, EventType.SCRUB, EventType.SECTOR_ERROR]


def test_queue_cancel_skips_event():
    queue = EventQueue()
    keep = queue.schedule(1.0, EventType.SCRUB, tag="keep")
    drop = queue.schedule(2.0, EventType.SCRUB, tag="drop")
    queue.cancel(drop)
    assert [e.payload["tag"] for e in queue.drain()] == ["keep"]
    assert keep.seq < drop.seq


def test_queue_rejects_non_finite_times():
    queue = EventQueue()
    with pytest.raises(ValueError):
        queue.schedule(math.inf, EventType.SCRUB)
    with pytest.raises(ValueError):
        queue.schedule(math.nan, EventType.SCRUB)


def test_queue_peek_time():
    queue = EventQueue()
    assert math.isinf(queue.peek_time())
    queue.schedule(3.5, EventType.SCRUB)
    assert queue.peek_time() == 3.5


def test_event_ordering_dataclass():
    a = Event(1.0, 0, EventType.SCRUB)
    b = Event(1.0, 1, EventType.SCRUB)
    c = Event(0.5, 2, EventType.SCRUB)
    assert sorted([b, a, c]) == [c, a, b]


# --------------------------------------------------------------------------- #
# Scenario validation
# --------------------------------------------------------------------------- #
def test_scenario_validation():
    code = RAID5Code(n=4, r=4)
    with pytest.raises(ValueError):
        Scenario(code=code, num_arrays=0)
    with pytest.raises(ValueError):
        Scenario(code=code, stripes_per_array=0)
    with pytest.raises(ValueError):
        Scenario(code=code, rebuild_concurrency=0)
    with pytest.raises(ValueError):
        Scenario(code=code, horizon_hours=0.0)
    with pytest.raises(ValueError):
        Scenario(code=code, scrub_interval_hours=0.0)  # would loop forever
    with pytest.raises(ValueError):
        Scenario(code=code, scrub_interval_hours=-1.0)
    with pytest.raises(ValueError):
        Scenario(code=code, write_rate_per_hour=-0.1)
    with pytest.raises(ValueError):
        Scenario(code=code, repair_streams=0.0)
    with pytest.raises(ValueError):
        Scenario(code=code, repair_streams=-2.0)
    # None means "unlimited" / "no sharing", not invalid.
    Scenario(code=code, rebuild_concurrency=None, repair_streams=None)
    Scenario(code=code, repair_streams=1.5)


# --------------------------------------------------------------------------- #
# ClusterSimulation trajectories
# --------------------------------------------------------------------------- #
def _base_scenario(**overrides):
    defaults = dict(
        code=RAID5Code(n=4, r=4),
        num_arrays=2,
        stripes_per_array=16,
        lifetime=ExponentialLifetime(1000.0),
        repair=ExponentialRepair(10.0),
        horizon_hours=50_000.0,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


def test_reliable_cluster_survives_horizon():
    scenario = _base_scenario(
        lifetime=ExponentialLifetime(1e12), horizon_hours=1000.0)
    result = ClusterSimulation(scenario, seed=0).run()
    assert not result.lost_data
    assert result.time_to_data_loss is None
    assert result.final_time == 1000.0


def test_failures_without_repair_lose_data():
    # Rebuilds take ~forever; the second device failure is fatal.
    scenario = _base_scenario(
        lifetime=ExponentialLifetime(100.0),
        repair=DeterministicRepair(1e9),
        horizon_hours=1e12)
    result = ClusterSimulation(scenario, seed=1).run()
    assert result.lost_data
    assert result.cause == "device_failures_exceed_m"
    assert result.event_counts["device_failure"] >= 2


def test_trajectory_deterministic_per_seed():
    scenario = _base_scenario()
    first = ClusterSimulation(scenario, seed=7).run()
    second = ClusterSimulation(scenario, seed=7).run()
    assert first.time_to_data_loss == second.time_to_data_loss
    assert first.events_processed == second.events_processed
    assert first.event_counts == second.event_counts


def test_scrubbing_prevents_latent_error_accumulation():
    """Same error process: frequent scrubs survive, no scrubs lose data
    (RAID-5 cannot cover two damaged chunks in one stripe)."""
    kwargs = dict(
        lifetime=ExponentialLifetime(1e12),   # no device failures
        sector_errors=SectorErrorProcess(0.002),
        horizon_hours=5000.0)
    scrubbed = ClusterSimulation(
        _base_scenario(scrub_interval_hours=10.0, **kwargs), seed=3)
    result = scrubbed.run()
    assert not result.lost_data
    assert result.event_counts["sector_error"] > 0
    assert result.event_counts["scrub"] > 0
    assert scrubbed.cluster.damage_summary()["unrecoverable_stripes"] == 0

    unscrubbed = ClusterSimulation(
        _base_scenario(scrub_interval_hours=None,
                       write_rate_per_hour=0.01, **kwargs), seed=3)
    result = unscrubbed.run()
    assert result.lost_data
    assert result.cause == "write_hit_unrecoverable_stripe"


def test_unscrubbed_sector_errors_eventually_fatal():
    """RAID-5 + latent errors + no scrubbing: a rebuild trips over them."""
    scenario = _base_scenario(
        num_arrays=1,
        lifetime=ExponentialLifetime(2000.0),
        repair=DeterministicRepair(5.0),
        sector_errors=SectorErrorProcess(0.05),
        burst_lengths=BurstLengthDistribution(max_length=4),
        scrub_interval_hours=None,
        horizon_hours=1e9)
    result = ClusterSimulation(scenario, seed=5).run()
    assert result.lost_data
    assert result.cause in ("unrecoverable_stripes_during_rebuild",
                            "device_failures_exceed_m")


def test_stripe_writes_clear_latent_errors():
    """A heavy write workload acts as implicit scrubbing."""
    scenario = _base_scenario(
        stripes_per_array=4,
        lifetime=ExponentialLifetime(1e12),
        sector_errors=SectorErrorProcess(0.002),
        write_rate_per_hour=10.0,
        horizon_hours=2000.0)
    sim = ClusterSimulation(scenario, seed=11)
    result = sim.run()
    assert result.event_counts["stripe_write"] > 0
    assert not result.lost_data
    assert sim.cluster.damage_summary()["unrecoverable_stripes"] == 0


def test_rebuild_concurrency_queues_rebuilds():
    scenario = _base_scenario(
        num_arrays=6,
        lifetime=ExponentialLifetime(50.0),
        repair=DeterministicRepair(30.0),
        rebuild_concurrency=1,
        horizon_hours=40.0)
    sim = ClusterSimulation(scenario, seed=13)
    sim.run()
    # With 6 arrays failing every ~50h/4-devices and one rebuild slot,
    # the pending queue must have been exercised.
    assert sim._active_rebuilds <= 1


def _completion_times(sim):
    """Run ``sim`` recording every live rebuild-completion time."""
    times = []
    original = sim._on_rebuild_complete
    sim._on_rebuild_complete = lambda e: (times.append(e.time),
                                          original(e))[1]
    result = sim.run()
    return times, result


def test_shared_repair_bandwidth_stretches_concurrent_rebuilds():
    """Regression for the contention-aware repair model: two rebuilds
    sharing one repair stream each run at half speed (10h of nominal
    work finishes at t=21 instead of t=11)."""
    def run(streams):
        scenario = _base_scenario(
            code=RAID5Code(n=4, r=4),
            num_arrays=2,
            lifetime=ExponentialLifetime(1e12),  # only injected failures
            repair=DeterministicRepair(10.0),
            repair_streams=streams,
            horizon_hours=100.0)
        sim = ClusterSimulation(scenario, seed=0)
        sim.queue.schedule(1.0, EventType.DEVICE_FAILURE, array=0, device=0)
        sim.queue.schedule(1.0, EventType.DEVICE_FAILURE, array=1, device=0)
        return _completion_times(sim)[0]

    assert run(None) == [11.0, 11.0]      # full per-device rate
    assert run(2.0) == [11.0, 11.0]       # enough streams for both
    assert run(1.0) == [21.0, 21.0]       # halved speed under sharing


def test_rebuild_speeds_up_when_contention_clears():
    """Staggered failures: the survivor reclaims the full stream after
    the first rebuild completes (piecewise-linear progress, not a fixed
    stretched duration)."""
    scenario = _base_scenario(
        code=RAID5Code(n=4, r=4),
        num_arrays=2,
        lifetime=ExponentialLifetime(1e12),
        repair=DeterministicRepair(10.0),
        repair_streams=1.0,
        horizon_hours=100.0)
    sim = ClusterSimulation(scenario, seed=0)
    sim.queue.schedule(1.0, EventType.DEVICE_FAILURE, array=0, device=0)
    sim.queue.schedule(6.0, EventType.DEVICE_FAILURE, array=1, device=0)
    times, result = _completion_times(sim)
    # Array 0: 5h solo + 10h at half speed = done at 16; array 1 then
    # finishes its remaining 5h of work solo at 21.
    assert times == [16.0, 21.0]
    assert not result.lost_data


def test_contention_turns_near_miss_into_data_loss():
    """The satellite regression: rebuild times lengthen under
    concurrent failures.  A second failure at t=16 is harmless when the
    rebuild finished at t=11 (full rate) but fatal when contention
    stretched the same rebuild to t=21."""
    def run(streams):
        scenario = _base_scenario(
            code=RAID5Code(n=4, r=4),
            num_arrays=2,
            lifetime=ExponentialLifetime(1e12),
            repair=DeterministicRepair(10.0),
            repair_streams=streams,
            horizon_hours=100.0)
        sim = ClusterSimulation(scenario, seed=0)
        sim.queue.schedule(1.0, EventType.DEVICE_FAILURE, array=0, device=0)
        sim.queue.schedule(1.0, EventType.DEVICE_FAILURE, array=1, device=0)
        sim.queue.schedule(16.0, EventType.DEVICE_FAILURE, array=0, device=1)
        return sim.run()

    assert not run(None).lost_data
    lost = run(1.0)
    assert lost.lost_data
    assert lost.cause == "device_failures_exceed_m"
    assert lost.time_to_data_loss == 16.0


def test_second_failure_during_rebuild_needs_its_own_rebuild():
    """m = 2: a device that fails while a rebuild is in flight is NOT
    repaired for free by that rebuild's completion -- it gets its own
    repair window."""
    from repro.codes.raid import RAID6Code
    scenario = _base_scenario(
        code=RAID6Code(n=5, r=4),
        num_arrays=1,
        lifetime=ExponentialLifetime(1e12),  # only injected failures
        repair=DeterministicRepair(10.0),
        horizon_hours=50.0)
    sim = ClusterSimulation(scenario, seed=0)
    # Device 0 fails at t=1 (rebuild due t=11); device 1 fails at t=2,
    # mid-rebuild.
    sim.queue.schedule(1.0, EventType.DEVICE_FAILURE, array=0, device=0)
    sim.queue.schedule(2.0, EventType.DEVICE_FAILURE, array=0, device=1)
    result = sim.run()
    assert not result.lost_data
    # Two separate rebuild completions: t=11 (device 0) and t=21 (device 1).
    assert result.event_counts["rebuild_complete"] == 2
    assert sim.cluster.arrays[0].num_failed == 0


def test_rebuild_replaces_devices_and_reschedules_failures():
    scenario = _base_scenario(
        num_arrays=1,
        lifetime=ExponentialLifetime(500.0),
        repair=DeterministicRepair(0.5),
        horizon_hours=20_000.0)
    sim = ClusterSimulation(scenario, seed=17)
    result = sim.run()
    if not result.lost_data:
        assert sim.cluster.arrays[0].num_failed == 0
    assert result.event_counts["rebuild_complete"] >= 1


# --------------------------------------------------------------------------- #
# Correlated failure domains (rack / enclosure shocks, batch wear)
# --------------------------------------------------------------------------- #
from repro.codes.reed_solomon import ReedSolomonStripeCode  # noqa: E402
from repro.sim.domains import FailureDomains  # noqa: E402


def _quiet_scenario(**overrides):
    """A scenario with every stochastic process but the one under test
    disabled: near-immortal devices, no sector errors/scrubs/writes."""
    defaults = dict(
        code=RAID5Code(n=4, r=8), num_arrays=1, stripes_per_array=8,
        lifetime=ExponentialLifetime(1e12),
        repair=DeterministicRepair(10.0),
        horizon_hours=1e6)
    defaults.update(overrides)
    return Scenario(**defaults)


def test_rack_shock_kills_whole_group_and_exceeds_m():
    """A contiguous single-rack array: the first shock fails every
    device simultaneously, far beyond m, and names the rack level in
    the loss cause."""
    scenario = _quiet_scenario(
        domains=FailureDomains(racks=1, rack_shock_rate_per_hour=1e-3,
                               placement="contiguous"))
    result = ClusterSimulation(scenario, seed=0).run()
    assert result.lost_data
    assert result.cause == "rack_shock_exceeds_m"
    assert result.event_counts["domain_shock"] == 1


def test_enclosure_shock_cause_names_its_level():
    scenario = _quiet_scenario(
        domains=FailureDomains(racks=1, enclosures_per_rack=1,
                               enclosure_shock_rate_per_hour=1e-3,
                               placement="contiguous"))
    result = ClusterSimulation(scenario, seed=0).run()
    assert result.lost_data
    assert result.cause == "enclosure_shock_exceeds_m"


def test_survivable_shock_starts_rebuilds_in_every_struck_array():
    """Spread placement over 4 racks: one rack shock fails exactly one
    device in EACH of two arrays -- two simultaneous rebuilds, no data
    loss (m = 1 per array)."""
    scenario = _quiet_scenario(
        num_arrays=2,
        domains=FailureDomains(racks=4, rack_shock_rate_per_hour=1e-4))
    sim = ClusterSimulation(scenario, seed=1)
    # Inject one shock by hand on rack 0 (devices (0,0) and (1,3) under
    # spread placement) instead of waiting for a sampled arrival.
    shock = sim.queue.schedule(5.0, EventType.DOMAIN_SHOCK, group=0)
    assert sim._handle(shock) is None   # survivable
    # Each array lost exactly one device (its share of the struck
    # rack), and each has its own rebuild in flight.
    assert [a.num_failed for a in sim.cluster.arrays] == [1, 1]
    assert sorted(sim._inflight) == [0, 1]


def test_shock_rebuild_storm_is_stretched_by_shared_bandwidth():
    """A rack shock hitting two arrays at once creates simultaneous
    rebuilds; with repair_streams=1 they share one stream and finish at
    2x the nominal duration -- the contention regime rack outages are
    expected to trigger."""
    def run(streams):
        scenario = _quiet_scenario(
            num_arrays=2, repair_streams=streams,
            domains=FailureDomains(racks=4, rack_shock_rate_per_hour=5e-5))
        sim = ClusterSimulation(scenario, seed=2)
        shock = sim.queue.schedule(5.0, EventType.DOMAIN_SHOCK, group=0)
        assert sim._handle(shock) is None
        assert sorted(sim._inflight) == [0, 1]   # the storm is on
        completion_times = {}
        for event in sim.queue.drain():
            if event.type is EventType.DOMAIN_SHOCK:
                continue   # ignore the rescheduled shock process
            assert sim._handle(event) is None
            if event.type is EventType.REBUILD_COMPLETE:
                completion_times[event.payload["array"]] = event.time
                if len(completion_times) == 2:
                    return completion_times
        raise AssertionError("rebuilds never completed")

    done = run(streams=None)
    assert done[0] == pytest.approx(15.0)   # 5 h shock + 10 h nominal
    assert done[1] == pytest.approx(15.0)
    done = run(streams=1.0)
    assert done[0] == pytest.approx(25.0)   # the shared stream: 2x
    assert done[1] == pytest.approx(25.0)


def test_shock_killed_device_does_not_inherit_stale_failure_event():
    """Regression: a device killed by a shock still has its sampled
    DEVICE_FAILURE event in the queue.  Once the device is rebuilt,
    that stale event must not fail it again -- the engine cancels the
    pending event at kill time."""
    scenario = _quiet_scenario(
        lifetime=ExponentialLifetime(5_000.0),
        domains=FailureDomains(racks=4, rack_shock_rate_per_hour=2e-4))
    sim = ClusterSimulation(scenario, seed=3)
    # Find the first shock that kills a device whose sampled intrinsic
    # failure lies beyond the rebuild window; after the rebuild, the
    # cancelled event must be skipped (drain() filters cancelled
    # events, so simply running to completion exercises the path).
    result = sim.run()
    # The run must be internally consistent: every processed failure
    # event acted on a healthy device or was a no-op; data loss, if
    # any, must carry a real cause.
    if result.lost_data:
        assert result.cause in ("device_failures_exceed_m",
                                "rack_shock_exceeds_m")
    assert result.event_counts["domain_shock"] >= 1


def test_pending_failure_bookkeeping_cancels_on_kill():
    """White-box: after a shock kills a device, its pending failure
    event is cancelled and removed from the bookkeeping."""
    scenario = _quiet_scenario(
        lifetime=ExponentialLifetime(50_000.0),
        domains=FailureDomains(racks=1, rack_shock_rate_per_hour=1e-4,
                               rack_kill_probability=1.0,
                               placement="contiguous"),
        code=RAID5Code(n=4, r=8))
    sim = ClusterSimulation(scenario, seed=4)
    for a, array in enumerate(sim.cluster.arrays):
        for d in range(array.n):
            sim._schedule_device_failure(a, d, 0.0)
    pending_before = dict(sim._pending_failure)
    assert len(pending_before) == 4
    # Deliver a shock by hand.
    shock = sim.queue.schedule(1.0, EventType.DOMAIN_SHOCK, group=0)
    outcome = sim._handle(shock)
    assert outcome == "rack_shock_exceeds_m"   # 4 kills > m = 1
    assert not sim._pending_failure
    for event in pending_before.values():
        assert event.payload.get("cancelled")


def test_batch_accelerated_devices_fail_first():
    """Bad-batch devices (indices 0..b-1) draw time-scaled lifetimes;
    with a huge acceleration they dominate the early failures."""
    scenario = _quiet_scenario(
        code=RAID5Code(n=8, r=8),
        lifetime=ExponentialLifetime(1e7),
        repair=DeterministicRepair(1.0),
        domains=FailureDomains(batch_fraction=0.25, batch_accel=1e4),
        horizon_hours=50_000.0)
    rng = np.random.default_rng(5)
    failed_devices = []
    for _ in range(40):
        sim = ClusterSimulation(
            scenario, np.random.default_rng(rng.integers(2 ** 63)))
        for d in range(8):
            sim._schedule_device_failure(0, d, 0.0)
        first = sim.queue.pop()
        assert first.type is EventType.DEVICE_FAILURE
        failed_devices.append(first.payload["device"])
    batch = set(range(2))   # round(0.25 * 8) devices
    share = sum(d in batch for d in failed_devices) / len(failed_devices)
    assert share > 0.9, share


def test_inert_domains_match_no_domains_trajectory():
    """A spec with zero shock rates and no batch wear must leave the
    trajectory identical to a domain-free run (same seed)."""
    plain = _quiet_scenario(lifetime=ExponentialLifetime(3_000.0),
                            horizon_hours=30_000.0)
    inert = _quiet_scenario(lifetime=ExponentialLifetime(3_000.0),
                            horizon_hours=30_000.0,
                            domains=FailureDomains(racks=4,
                                                   batch_fraction=0.5))
    a = ClusterSimulation(plain, seed=6).run()
    b = ClusterSimulation(inert, seed=6).run()
    assert a.time_to_data_loss == b.time_to_data_loss
    assert a.events_processed == b.events_processed
    assert a.event_counts == b.event_counts
