"""Event queue ordering and the discrete-event cluster engine."""

import math

import numpy as np
import pytest

from repro.array.failures import BurstLengthDistribution
from repro.codes.raid import RAID5Code
from repro.sim.events import (
    ClusterSimulation,
    Event,
    EventQueue,
    EventType,
    Scenario,
)
from repro.sim.lifetimes import (
    DeterministicRepair,
    ExponentialLifetime,
    ExponentialRepair,
    SectorErrorProcess,
)


# --------------------------------------------------------------------------- #
# EventQueue
# --------------------------------------------------------------------------- #
def test_queue_orders_by_time_then_insertion():
    queue = EventQueue()
    queue.schedule(5.0, EventType.SCRUB, tag="late")
    queue.schedule(1.0, EventType.DEVICE_FAILURE, tag="early")
    queue.schedule(5.0, EventType.SECTOR_ERROR, tag="tie-second")
    assert len(queue) == 3
    drained = list(queue.drain())
    assert [e.payload["tag"] for e in drained] == [
        "early", "late", "tie-second"]
    assert [e.type for e in drained] == [
        EventType.DEVICE_FAILURE, EventType.SCRUB, EventType.SECTOR_ERROR]


def test_queue_cancel_skips_event():
    queue = EventQueue()
    keep = queue.schedule(1.0, EventType.SCRUB, tag="keep")
    drop = queue.schedule(2.0, EventType.SCRUB, tag="drop")
    queue.cancel(drop)
    assert [e.payload["tag"] for e in queue.drain()] == ["keep"]
    assert keep.seq < drop.seq


def test_queue_rejects_non_finite_times():
    queue = EventQueue()
    with pytest.raises(ValueError):
        queue.schedule(math.inf, EventType.SCRUB)
    with pytest.raises(ValueError):
        queue.schedule(math.nan, EventType.SCRUB)


def test_queue_peek_time():
    queue = EventQueue()
    assert math.isinf(queue.peek_time())
    queue.schedule(3.5, EventType.SCRUB)
    assert queue.peek_time() == 3.5


def test_event_ordering_dataclass():
    a = Event(1.0, 0, EventType.SCRUB)
    b = Event(1.0, 1, EventType.SCRUB)
    c = Event(0.5, 2, EventType.SCRUB)
    assert sorted([b, a, c]) == [c, a, b]


# --------------------------------------------------------------------------- #
# Scenario validation
# --------------------------------------------------------------------------- #
def test_scenario_validation():
    code = RAID5Code(n=4, r=4)
    with pytest.raises(ValueError):
        Scenario(code=code, num_arrays=0)
    with pytest.raises(ValueError):
        Scenario(code=code, stripes_per_array=0)
    with pytest.raises(ValueError):
        Scenario(code=code, rebuild_concurrency=0)
    with pytest.raises(ValueError):
        Scenario(code=code, horizon_hours=0.0)
    with pytest.raises(ValueError):
        Scenario(code=code, scrub_interval_hours=0.0)  # would loop forever
    with pytest.raises(ValueError):
        Scenario(code=code, scrub_interval_hours=-1.0)
    with pytest.raises(ValueError):
        Scenario(code=code, write_rate_per_hour=-0.1)
    with pytest.raises(ValueError):
        Scenario(code=code, repair_streams=0.0)
    with pytest.raises(ValueError):
        Scenario(code=code, repair_streams=-2.0)
    # None means "unlimited" / "no sharing", not invalid.
    Scenario(code=code, rebuild_concurrency=None, repair_streams=None)
    Scenario(code=code, repair_streams=1.5)


# --------------------------------------------------------------------------- #
# ClusterSimulation trajectories
# --------------------------------------------------------------------------- #
def _base_scenario(**overrides):
    defaults = dict(
        code=RAID5Code(n=4, r=4),
        num_arrays=2,
        stripes_per_array=16,
        lifetime=ExponentialLifetime(1000.0),
        repair=ExponentialRepair(10.0),
        horizon_hours=50_000.0,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


def test_reliable_cluster_survives_horizon():
    scenario = _base_scenario(
        lifetime=ExponentialLifetime(1e12), horizon_hours=1000.0)
    result = ClusterSimulation(scenario, seed=0).run()
    assert not result.lost_data
    assert result.time_to_data_loss is None
    assert result.final_time == 1000.0


def test_failures_without_repair_lose_data():
    # Rebuilds take ~forever; the second device failure is fatal.
    scenario = _base_scenario(
        lifetime=ExponentialLifetime(100.0),
        repair=DeterministicRepair(1e9),
        horizon_hours=1e12)
    result = ClusterSimulation(scenario, seed=1).run()
    assert result.lost_data
    assert result.cause == "device_failures_exceed_m"
    assert result.event_counts["device_failure"] >= 2


def test_trajectory_deterministic_per_seed():
    scenario = _base_scenario()
    first = ClusterSimulation(scenario, seed=7).run()
    second = ClusterSimulation(scenario, seed=7).run()
    assert first.time_to_data_loss == second.time_to_data_loss
    assert first.events_processed == second.events_processed
    assert first.event_counts == second.event_counts


def test_scrubbing_prevents_latent_error_accumulation():
    """Same error process: frequent scrubs survive, no scrubs lose data
    (RAID-5 cannot cover two damaged chunks in one stripe)."""
    kwargs = dict(
        lifetime=ExponentialLifetime(1e12),   # no device failures
        sector_errors=SectorErrorProcess(0.002),
        horizon_hours=5000.0)
    scrubbed = ClusterSimulation(
        _base_scenario(scrub_interval_hours=10.0, **kwargs), seed=3)
    result = scrubbed.run()
    assert not result.lost_data
    assert result.event_counts["sector_error"] > 0
    assert result.event_counts["scrub"] > 0
    assert scrubbed.cluster.damage_summary()["unrecoverable_stripes"] == 0

    unscrubbed = ClusterSimulation(
        _base_scenario(scrub_interval_hours=None,
                       write_rate_per_hour=0.01, **kwargs), seed=3)
    result = unscrubbed.run()
    assert result.lost_data
    assert result.cause == "write_hit_unrecoverable_stripe"


def test_unscrubbed_sector_errors_eventually_fatal():
    """RAID-5 + latent errors + no scrubbing: a rebuild trips over them."""
    scenario = _base_scenario(
        num_arrays=1,
        lifetime=ExponentialLifetime(2000.0),
        repair=DeterministicRepair(5.0),
        sector_errors=SectorErrorProcess(0.05),
        burst_lengths=BurstLengthDistribution(max_length=4),
        scrub_interval_hours=None,
        horizon_hours=1e9)
    result = ClusterSimulation(scenario, seed=5).run()
    assert result.lost_data
    assert result.cause in ("unrecoverable_stripes_during_rebuild",
                            "device_failures_exceed_m")


def test_stripe_writes_clear_latent_errors():
    """A heavy write workload acts as implicit scrubbing."""
    scenario = _base_scenario(
        stripes_per_array=4,
        lifetime=ExponentialLifetime(1e12),
        sector_errors=SectorErrorProcess(0.002),
        write_rate_per_hour=10.0,
        horizon_hours=2000.0)
    sim = ClusterSimulation(scenario, seed=11)
    result = sim.run()
    assert result.event_counts["stripe_write"] > 0
    assert not result.lost_data
    assert sim.cluster.damage_summary()["unrecoverable_stripes"] == 0


def test_rebuild_concurrency_queues_rebuilds():
    scenario = _base_scenario(
        num_arrays=6,
        lifetime=ExponentialLifetime(50.0),
        repair=DeterministicRepair(30.0),
        rebuild_concurrency=1,
        horizon_hours=40.0)
    sim = ClusterSimulation(scenario, seed=13)
    sim.run()
    # With 6 arrays failing every ~50h/4-devices and one rebuild slot,
    # the pending queue must have been exercised.
    assert sim._active_rebuilds <= 1


def _completion_times(sim):
    """Run ``sim`` recording every live rebuild-completion time."""
    times = []
    original = sim._on_rebuild_complete
    sim._on_rebuild_complete = lambda e: (times.append(e.time),
                                          original(e))[1]
    result = sim.run()
    return times, result


def test_shared_repair_bandwidth_stretches_concurrent_rebuilds():
    """Regression for the contention-aware repair model: two rebuilds
    sharing one repair stream each run at half speed (10h of nominal
    work finishes at t=21 instead of t=11)."""
    def run(streams):
        scenario = _base_scenario(
            code=RAID5Code(n=4, r=4),
            num_arrays=2,
            lifetime=ExponentialLifetime(1e12),  # only injected failures
            repair=DeterministicRepair(10.0),
            repair_streams=streams,
            horizon_hours=100.0)
        sim = ClusterSimulation(scenario, seed=0)
        sim.queue.schedule(1.0, EventType.DEVICE_FAILURE, array=0, device=0)
        sim.queue.schedule(1.0, EventType.DEVICE_FAILURE, array=1, device=0)
        return _completion_times(sim)[0]

    assert run(None) == [11.0, 11.0]      # full per-device rate
    assert run(2.0) == [11.0, 11.0]       # enough streams for both
    assert run(1.0) == [21.0, 21.0]       # halved speed under sharing


def test_rebuild_speeds_up_when_contention_clears():
    """Staggered failures: the survivor reclaims the full stream after
    the first rebuild completes (piecewise-linear progress, not a fixed
    stretched duration)."""
    scenario = _base_scenario(
        code=RAID5Code(n=4, r=4),
        num_arrays=2,
        lifetime=ExponentialLifetime(1e12),
        repair=DeterministicRepair(10.0),
        repair_streams=1.0,
        horizon_hours=100.0)
    sim = ClusterSimulation(scenario, seed=0)
    sim.queue.schedule(1.0, EventType.DEVICE_FAILURE, array=0, device=0)
    sim.queue.schedule(6.0, EventType.DEVICE_FAILURE, array=1, device=0)
    times, result = _completion_times(sim)
    # Array 0: 5h solo + 10h at half speed = done at 16; array 1 then
    # finishes its remaining 5h of work solo at 21.
    assert times == [16.0, 21.0]
    assert not result.lost_data


def test_contention_turns_near_miss_into_data_loss():
    """The satellite regression: rebuild times lengthen under
    concurrent failures.  A second failure at t=16 is harmless when the
    rebuild finished at t=11 (full rate) but fatal when contention
    stretched the same rebuild to t=21."""
    def run(streams):
        scenario = _base_scenario(
            code=RAID5Code(n=4, r=4),
            num_arrays=2,
            lifetime=ExponentialLifetime(1e12),
            repair=DeterministicRepair(10.0),
            repair_streams=streams,
            horizon_hours=100.0)
        sim = ClusterSimulation(scenario, seed=0)
        sim.queue.schedule(1.0, EventType.DEVICE_FAILURE, array=0, device=0)
        sim.queue.schedule(1.0, EventType.DEVICE_FAILURE, array=1, device=0)
        sim.queue.schedule(16.0, EventType.DEVICE_FAILURE, array=0, device=1)
        return sim.run()

    assert not run(None).lost_data
    lost = run(1.0)
    assert lost.lost_data
    assert lost.cause == "device_failures_exceed_m"
    assert lost.time_to_data_loss == 16.0


def test_second_failure_during_rebuild_needs_its_own_rebuild():
    """m = 2: a device that fails while a rebuild is in flight is NOT
    repaired for free by that rebuild's completion -- it gets its own
    repair window."""
    from repro.codes.raid import RAID6Code
    scenario = _base_scenario(
        code=RAID6Code(n=5, r=4),
        num_arrays=1,
        lifetime=ExponentialLifetime(1e12),  # only injected failures
        repair=DeterministicRepair(10.0),
        horizon_hours=50.0)
    sim = ClusterSimulation(scenario, seed=0)
    # Device 0 fails at t=1 (rebuild due t=11); device 1 fails at t=2,
    # mid-rebuild.
    sim.queue.schedule(1.0, EventType.DEVICE_FAILURE, array=0, device=0)
    sim.queue.schedule(2.0, EventType.DEVICE_FAILURE, array=0, device=1)
    result = sim.run()
    assert not result.lost_data
    # Two separate rebuild completions: t=11 (device 0) and t=21 (device 1).
    assert result.event_counts["rebuild_complete"] == 2
    assert sim.cluster.arrays[0].num_failed == 0


def test_rebuild_replaces_devices_and_reschedules_failures():
    scenario = _base_scenario(
        num_arrays=1,
        lifetime=ExponentialLifetime(500.0),
        repair=DeterministicRepair(0.5),
        horizon_hours=20_000.0)
    sim = ClusterSimulation(scenario, seed=17)
    result = sim.run()
    if not result.lost_data:
        assert sim.cluster.arrays[0].num_failed == 0
    assert result.event_counts["rebuild_complete"] >= 1
