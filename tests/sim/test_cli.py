"""Smoke tests for the simulator command-line interface."""

import pytest

from repro.sim.cli import build_parser, main


def test_default_run_prints_mttdl_and_agreement(capsys):
    assert main(["--seed", "0", "--trials", "100"]) == 0
    out = capsys.readouterr().out
    assert "MTTDL (sim)" in out
    assert "MTTDL (analytic)" in out
    assert "analytic within 3 sigma  yes" in out


def test_stair_spec_with_horizon_reports_loss_probability(capsys):
    assert main(["--code", "stair(n=8,r=16,m=1,e=(1,2))",
                 "--trials", "50", "--seed", "1", "--p-bit", "1e-10",
                 "--arrays", "2", "--horizon", "1e7"]) == 0
    out = capsys.readouterr().out
    assert "STAIR" in out
    assert "P(loss by horizon)" in out


def test_events_mode_smoke(capsys):
    assert main(["--mode", "events", "--trials", "3", "--seed", "0",
                 "--stripes", "64", "--mttf", "5000",
                 "--horizon", "20000"]) == 0
    out = capsys.readouterr().out
    assert "Event-driven trajectories" in out
    assert "data loss in" in out


def test_weibull_flag_runs(capsys):
    assert main(["--trials", "50", "--seed", "2",
                 "--weibull-shape", "2.0", "--horizon", "1e6"]) == 0
    out = capsys.readouterr().out
    # Weibull runs never print the exponential-only analytic comparison.
    assert "MTTDL (analytic)" not in out


def test_rejects_bad_trials():
    with pytest.raises(SystemExit):
        main(["--trials", "0"])


def test_montecarlo_mode_runs_m2_codes_on_vectorized_path(capsys):
    """RAID-6/SD with m = 2 go through the vectorized lane machine and
    print the general-m analytic comparison."""
    assert main(["--code", "sd(n=8,r=16,m=2,s=2)", "--trials", "150",
                 "--seed", "0", "--mttf", "20000",
                 "--repair-hours", "200"]) == 0
    out = capsys.readouterr().out
    assert "m (device tolerance)" in out
    assert "MTTDL (analytic)" in out
    assert "analytic within 3 sigma  yes" in out


def test_events_mode_accepts_m2_codes(capsys):
    assert main(["--mode", "events", "--code", "raid6(n=6,r=4)",
                 "--trials", "2", "--seed", "0", "--stripes", "32",
                 "--mttf", "2000", "--horizon", "30000"]) == 0
    assert "RAID-6" in capsys.readouterr().out


def test_events_mode_contention_flags(capsys):
    assert main(["--mode", "events", "--trials", "2", "--seed", "3",
                 "--stripes", "32", "--mttf", "2000",
                 "--rebuild-streams", "1.5", "--rebuild-rate-mbs", "50",
                 "--rebuild-concurrency", "2", "--arrays", "3",
                 "--horizon", "20000"]) == 0
    assert "Event-driven trajectories" in capsys.readouterr().out


def test_help_epilog_points_at_code_spec_grammar(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--help"])
    out = capsys.readouterr().out
    assert "docs/code-specs.md" in out
    assert "stair" in out


def test_nonconvergence_exits_cleanly(monkeypatch):
    """An ultra-reliable m >= 2 config at the paper's parameters cannot
    reach absorption; the CLI must explain, not traceback.  MAX_ROUNDS
    is shrunk so the safety valve trips immediately."""
    import repro.sim.montecarlo as mc
    monkeypatch.setattr(mc, "MAX_ROUNDS", 5)
    with pytest.raises(SystemExit, match="horizon"):
        main(["--code", "rs(n=8,r=16,m=3)", "--trials", "5"])


def test_bad_spec_exits_cleanly():
    with pytest.raises(SystemExit, match="malformed code spec"):
        main(["--code", "stair(n=8", "--trials", "10"])
    with pytest.raises(SystemExit, match="invalid arguments"):
        main(["--code", "rs(n=8,r=4,q=1)", "--trials", "10"])


def test_events_mode_requires_scrub_interval_for_sector_errors():
    with pytest.raises(SystemExit, match="scrub-interval"):
        main(["--mode", "events", "--trials", "2", "--seed", "0",
              "--scrub-interval", "0"])


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.mode == "montecarlo"
    assert args.trials == 1000
    assert args.seed == 0
