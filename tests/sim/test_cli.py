"""Smoke tests for the simulator command-line interface."""

import pytest

from repro.sim.cli import build_parser, main


def test_default_run_prints_mttdl_and_agreement(capsys):
    assert main(["--seed", "0", "--trials", "100"]) == 0
    out = capsys.readouterr().out
    assert "MTTDL (sim)" in out
    assert "MTTDL (analytic)" in out
    assert "analytic within 3 sigma  yes" in out


def test_stair_spec_with_horizon_reports_loss_probability(capsys):
    assert main(["--code", "stair(n=8,r=16,m=1,e=(1,2))",
                 "--trials", "50", "--seed", "1", "--p-bit", "1e-10",
                 "--arrays", "2", "--horizon", "1e7"]) == 0
    out = capsys.readouterr().out
    assert "STAIR" in out
    assert "P(loss by horizon)" in out


def test_events_mode_smoke(capsys):
    assert main(["--mode", "events", "--trials", "3", "--seed", "0",
                 "--stripes", "64", "--mttf", "5000",
                 "--horizon", "20000"]) == 0
    out = capsys.readouterr().out
    assert "Event-driven trajectories" in out
    assert "data loss in" in out


def test_weibull_flag_runs(capsys):
    assert main(["--trials", "50", "--seed", "2",
                 "--weibull-shape", "2.0", "--horizon", "1e6"]) == 0
    out = capsys.readouterr().out
    # Weibull runs never print the exponential-only analytic comparison.
    assert "MTTDL (analytic)" not in out


def test_rejects_bad_trials():
    with pytest.raises(SystemExit):
        main(["--trials", "0"])


def test_rejects_bad_arrays():
    """--arrays 0 used to simulate an 'immortal' zero-lane cluster."""
    with pytest.raises(SystemExit, match="arrays"):
        main(["--arrays", "0"])
    with pytest.raises(SystemExit, match="arrays"):
        main(["--arrays", "-2"])


def test_single_trial_reports_estimate_with_ci_note(capsys):
    """--trials 1 (one observed loss, no CI possible) must still print
    the sample estimate instead of silently omitting every result row."""
    assert main(["--trials", "1", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "MTTDL (sim)" in out
    assert "insufficient losses for a CI" in out


def test_montecarlo_mode_runs_m2_codes_on_vectorized_path(capsys):
    """RAID-6/SD with m = 2 go through the vectorized lane machine and
    print the general-m analytic comparison."""
    assert main(["--code", "sd(n=8,r=16,m=2,s=2)", "--trials", "150",
                 "--seed", "0", "--mttf", "20000",
                 "--repair-hours", "200"]) == 0
    out = capsys.readouterr().out
    assert "m (device tolerance)" in out
    assert "MTTDL (analytic)" in out
    assert "analytic within 3 sigma  yes" in out


def test_events_mode_accepts_m2_codes(capsys):
    assert main(["--mode", "events", "--code", "raid6(n=6,r=4)",
                 "--trials", "2", "--seed", "0", "--stripes", "32",
                 "--mttf", "2000", "--horizon", "30000"]) == 0
    assert "RAID-6" in capsys.readouterr().out


def test_events_mode_contention_flags(capsys):
    assert main(["--mode", "events", "--trials", "2", "--seed", "3",
                 "--stripes", "32", "--mttf", "2000",
                 "--rebuild-streams", "1.5", "--rebuild-rate-mbs", "50",
                 "--rebuild-concurrency", "2", "--arrays", "3",
                 "--horizon", "20000"]) == 0
    assert "Event-driven trajectories" in capsys.readouterr().out


def test_help_epilog_points_at_code_spec_grammar(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--help"])
    out = capsys.readouterr().out
    assert "docs/code-specs.md" in out
    assert "stair" in out


def test_rare_event_mode_reaches_the_paper_operating_point(capsys):
    """The acceptance criterion: SD(m=2) at the default 1/λ = 500,000 h
    -- the configuration that previously died in the MAX_ROUNDS
    RuntimeError -- completes with --rare-event and its 3σ interval
    contains the general Markov chain's MTTDL."""
    assert main(["--code", "sd(n=8,r=16,m=2,s=2)", "--rare-event",
                 "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "Rare-event cluster reliability" in out
    assert "effective sample size" in out
    assert "analytic within 3 sigma  yes" in out


def test_ultra_reliable_config_auto_selects_rare_event(capsys):
    """Without --rare-event the CLI projects the direct runner's round
    count and switches to the rare-event estimator instead of letting
    the run abort in the MAX_ROUNDS RuntimeError."""
    assert main(["--code", "rs(n=8,r=16,m=3)", "--trials", "5",
                 "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "rare-event (auto" in out
    assert "analytic within 3 sigma  yes" in out


def test_horizon_keeps_ultra_reliable_config_on_direct_path(capsys):
    """A horizon bounds the direct run, so no auto-switch happens and
    the P(loss) estimate prints as before."""
    assert main(["--code", "rs(n=8,r=16,m=3)", "--trials", "20",
                 "--seed", "2", "--horizon", "1e5"]) == 0
    out = capsys.readouterr().out
    assert "rare-event" not in out
    assert "P(loss by horizon)" in out


def test_rare_event_rejects_incompatible_flags():
    with pytest.raises(SystemExit, match="exponential"):
        main(["--rare-event", "--weibull-shape", "2.0"])
    with pytest.raises(SystemExit, match="horizon"):
        main(["--rare-event", "--horizon", "1e6"])
    with pytest.raises(SystemExit, match="montecarlo"):
        main(["--rare-event", "--mode", "events"])


def test_nonconvergence_exits_cleanly(monkeypatch):
    """Weibull lifetimes have no analytic projection (and no rare-event
    fallback), so a non-converging run must still surface as a clean
    CLI error pointing at the remedies.  MAX_ROUNDS is shrunk so the
    safety valve trips immediately."""
    import repro.sim.montecarlo as mc
    monkeypatch.setattr(mc, "MAX_ROUNDS", 5)
    with pytest.raises(SystemExit, match="rare-event"):
        main(["--code", "rs(n=8,r=16,m=3)", "--trials", "5",
              "--weibull-shape", "1.0"])


def test_bad_spec_exits_cleanly():
    with pytest.raises(SystemExit, match="malformed code spec"):
        main(["--code", "stair(n=8", "--trials", "10"])
    with pytest.raises(SystemExit, match="invalid arguments"):
        main(["--code", "rs(n=8,r=4,q=1)", "--trials", "10"])


def test_events_mode_requires_scrub_interval_for_sector_errors():
    with pytest.raises(SystemExit, match="scrub-interval"):
        main(["--mode", "events", "--trials", "2", "--seed", "0",
              "--scrub-interval", "0"])


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.mode == "montecarlo"
    assert args.trials == 1000
    assert args.seed == 0


# --------------------------------------------------------------------------- #
# Rare-event auto-switchover boundary
# --------------------------------------------------------------------------- #
def _projection_for(argv_mttf: float, trials: int) -> float:
    """The projected direct-MC round count the CLI computes for the
    default RS m=1 code at the given MTTF."""
    from repro.codes.registry import parse_code_spec
    from repro.reliability.mttdl import (SystemParameters,
                                         mttdl_array_general)
    from repro.reliability.sector_models import IndependentSectorModel
    from repro.sim.montecarlo import code_reliability_from_code
    from repro.sim.rare import projected_direct_rounds

    code = parse_code_spec("rs(n=8,r=16,m=1)")
    params = SystemParameters(mean_time_to_failure_hours=argv_mttf,
                              n=code.n, r=code.r, m=1)
    model = IndependentSectorModel.from_p_bit(1e-12, code.r,
                                              params.sector_bytes)
    analytic = mttdl_array_general(
        code_reliability_from_code(code), params, model)
    return projected_direct_rounds(analytic, code.n, argv_mttf, trials)


def test_auto_switchover_boundary_just_below_the_valve(monkeypatch,
                                                       capsys):
    """Projected rounds a hair below the valve: the run must stay on
    the direct path (no rare-event table), exercising the boundary the
    endpoint tests never touch."""
    import repro.sim.rare as rare
    projected = _projection_for(20_000.0, trials=60)
    monkeypatch.setattr(rare, "MAX_ROUNDS", projected * 1.01)
    assert main(["--trials", "60", "--seed", "0", "--mttf", "20000"]) == 0
    out = capsys.readouterr().out
    assert "rare-event" not in out
    assert "MTTDL (sim)" in out


def test_auto_switchover_boundary_just_above_the_valve(monkeypatch,
                                                       capsys):
    """The same configuration with the valve a hair below the
    projection must switch to the rare-event estimator."""
    import repro.sim.rare as rare
    projected = _projection_for(20_000.0, trials=60)
    monkeypatch.setattr(rare, "MAX_ROUNDS", projected * 0.99)
    assert main(["--trials", "60", "--seed", "0", "--mttf", "20000"]) == 0
    out = capsys.readouterr().out
    assert "rare-event (auto" in out
    assert "MTTDL (rare-event)" in out


# --------------------------------------------------------------------------- #
# Failure-domain flags
# --------------------------------------------------------------------------- #
def test_domain_flags_default_to_no_domains(capsys):
    assert main(["--trials", "50", "--seed", "0", "--mttf", "20000"]) == 0
    assert "failure domains" not in capsys.readouterr().out


def test_montecarlo_mode_with_rack_shocks_prints_independent_ref(capsys):
    assert main(["--trials", "200", "--seed", "0", "--mttf", "20000",
                 "--racks", "8", "--rack-shock-rate", "1e-4"]) == 0
    out = capsys.readouterr().out
    assert "failure domains" in out
    assert "8 racks (spread)" in out
    # The correlated run never claims 3-sigma agreement with the
    # independent chain -- it prints it as a reference instead.
    assert "analytic, independent ref" in out
    assert "analytic within 3 sigma" not in out


def test_inert_domain_flags_keep_the_analytic_verdict(capsys):
    """Topology without correlation (racks > 1 but no shocks): the §7
    chain still applies and the verdict row must stay."""
    assert main(["--trials", "100", "--seed", "0", "--racks", "4"]) == 0
    out = capsys.readouterr().out
    assert "failure domains" in out
    assert "analytic within 3 sigma  yes" in out


def test_events_mode_with_contiguous_rack_shocks(capsys):
    assert main(["--mode", "events", "--trials", "3", "--seed", "0",
                 "--stripes", "32", "--mttf", "50000",
                 "--racks", "4", "--rack-shock-rate", "1e-4",
                 "--placement", "contiguous", "--horizon", "50000"]) == 0
    out = capsys.readouterr().out
    assert "rack_shock_exceeds_m" in out


def test_rare_event_with_domains_prints_independent_ref(capsys):
    assert main(["--code", "sd(n=8,r=16,m=2,s=2)", "--rare-event",
                 "--seed", "0", "--racks", "8",
                 "--rack-shock-rate", "2e-6",
                 "--rare-target-rel-se", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "Rare-event cluster reliability" in out
    assert "failure domains" in out
    assert "analytic, independent ref" in out


def test_batch_flags_thread_through(capsys):
    assert main(["--trials", "200", "--seed", "0", "--mttf", "20000",
                 "--batch-fraction", "0.5", "--batch-accel", "4"]) == 0
    out = capsys.readouterr().out
    assert "batch 50% x4 accel" in out
    assert "analytic, independent ref" in out


def test_bad_domain_flags_exit_cleanly():
    with pytest.raises(SystemExit, match="racks"):
        main(["--racks", "0", "--trials", "10"])
    with pytest.raises(SystemExit, match="kill_probability"):
        main(["--racks", "2", "--rack-kill-prob", "0", "--trials", "10"])
    with pytest.raises(SystemExit, match="placement|batch"):
        main(["--batch-accel", "-1", "--trials", "10"])


def test_help_epilog_points_at_failure_domain_docs(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--help"])
    out = capsys.readouterr().out
    assert "docs/failure-domains.md" in out
    assert "--rack-shock-rate" in out


# --------------------------------------------------------------------------- #
# Failure-trace flags
# --------------------------------------------------------------------------- #
import pathlib  # noqa: E402

SAMPLE_TRACE = str(pathlib.Path(__file__).resolve().parents[2]
                   / "examples" / "sample_trace.csv")


def _write_tiny_trace(tmp_path, failures=True):
    """A 3-device snapshot trace (2 observed failures, 1 censored)."""
    rows = ["date,serial_number,failure"]
    for serial, days, failed in (("A", 4, failures), ("B", 6, failures),
                                 ("C", 8, False)):
        for day in range(days):
            flag = int(failed and day == days - 1)
            rows.append(f"2024-01-{day + 1:02d},{serial},{flag}")
    path = tmp_path / "trace.csv"
    path.write_text("\n".join(rows) + "\n")
    return path


def test_trace_flag_fits_empirical_model_and_prints_trace_row(capsys):
    assert main(["--trace", SAMPLE_TRACE, "--trials", "100",
                 "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "failure trace" in out
    assert "EmpiricalLifetime" in out
    assert "MTTDL (sim)" in out
    # An empirical lifetime has no exponential closed form to check.
    assert "analytic within 3 sigma" not in out


def test_trace_km_model_runs_direct_simulation(capsys):
    assert main(["--trace", SAMPLE_TRACE, "--trace-model", "km",
                 "--trials", "100", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "KaplanMeierLifetime" in out
    assert "MTTDL (sim)" in out


def test_trace_rare_event_runs_on_piecewise_fit(capsys):
    assert main(["--trace", SAMPLE_TRACE, "--rare-event", "--seed", "0",
                 "--rare-target-rel-se", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "Rare-event cluster reliability" in out
    assert "EmpiricalLifetime" in out
    assert "- (empirical lifetimes)" in out
    # The sample fleet has an infant cohort, so the quasi-renewal
    # caveat must arrive as a table row, not a raw Python warning.
    assert "warning" in out
    assert "quasi-renewal" in out


def test_trace_replay_runs_on_event_engine(tmp_path, capsys):
    path = _write_tiny_trace(tmp_path)
    assert main(["--mode", "events", "--trace", str(path),
                 "--trace-replay", "--trials", "2", "--seed", "0",
                 "--stripes", "16", "--horizon", "500"]) == 0
    out = capsys.readouterr().out
    assert "TraceReplayLifetime" in out
    assert "Event-driven trajectories" in out


def test_trace_missing_or_empty_file_exits_readably(tmp_path):
    """The CLI-ergonomics satellite: a bad --trace is a one-line error,
    never a traceback."""
    with pytest.raises(SystemExit, match="does not exist"):
        main(["--trace", str(tmp_path / "nope.csv"), "--trials", "10"])
    empty = tmp_path / "empty.csv"
    empty.write_text("")
    with pytest.raises(SystemExit, match="is empty"):
        main(["--trace", str(empty), "--trials", "10"])
    header_only = tmp_path / "header.csv"
    header_only.write_text("date,serial_number,failure\n")
    with pytest.raises(SystemExit, match="no data rows"):
        main(["--trace", str(header_only), "--trials", "10"])


def test_trace_flag_conflicts_exit_readably(tmp_path):
    with pytest.raises(SystemExit, match="pick one"):
        main(["--trace", SAMPLE_TRACE, "--weibull-shape", "2.0",
              "--trials", "10"])
    with pytest.raises(SystemExit, match="piecewise"):
        main(["--trace", SAMPLE_TRACE, "--trace-model", "km",
              "--rare-event"])
    with pytest.raises(SystemExit, match="needs --trace"):
        main(["--trace-replay", "--mode", "events", "--trials", "2"])
    with pytest.raises(SystemExit, match="events only"):
        main(["--trace", SAMPLE_TRACE, "--trace-replay", "--trials", "2"])
    with pytest.raises(SystemExit, match="trace-bins"):
        main(["--trace", SAMPLE_TRACE, "--trace-bins", "0",
              "--trials", "10"])
    # An explicitly requested model alongside verbatim replay is a
    # contradiction, not something to silently ignore.
    with pytest.raises(SystemExit, match="fits no model"):
        main(["--mode", "events", "--trace", SAMPLE_TRACE,
              "--trace-replay", "--trace-model", "km", "--trials", "2",
              "--stripes", "16", "--horizon", "500"])
    # Orphaned trace flags (no --trace) must not silently fall back to
    # the parametric model the user thinks they replaced.
    with pytest.raises(SystemExit, match="add --trace"):
        main(["--trace-model", "km", "--trials", "10"])
    with pytest.raises(SystemExit, match="add --trace"):
        main(["--trace-bins", "4", "--trials", "10"])
    # Bins size the piecewise fit only.
    with pytest.raises(SystemExit, match="no bins"):
        main(["--trace", SAMPLE_TRACE, "--trace-model", "km",
              "--trace-bins", "4", "--trials", "10"])


def test_ultra_reliable_trace_fit_auto_selects_rare_event(monkeypatch,
                                                          capsys):
    """A fitted trace whose projected direct-MC round count blows the
    valve must route to the rare-event estimator (which accepts the
    piecewise fit) instead of grinding into the MAX_ROUNDS error."""
    import repro.sim.rare as rare
    monkeypatch.setattr(rare, "MAX_ROUNDS", 10.0)
    assert main(["--trace", SAMPLE_TRACE, "--trials", "50",
                 "--seed", "0", "--rare-target-rel-se", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "rare-event (auto" in out
    assert "EmpiricalLifetime" in out
    assert "MTTDL (rare-event)" in out


def test_trace_rare_event_accepts_inert_domain_topology(capsys):
    """Pure topology (racks without shocks) is a statistical no-op and
    must not block the empirical rare-event path."""
    assert main(["--trace", SAMPLE_TRACE, "--rare-event", "--seed", "0",
                 "--racks", "8", "--rare-target-rel-se", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "Rare-event cluster reliability" in out
    assert "EmpiricalLifetime" in out
    # An *active* correlation with an empirical lifetime is rejected.
    with pytest.raises(SystemExit, match="correlated failure domains"):
        main(["--trace", SAMPLE_TRACE, "--rare-event", "--seed", "0",
              "--racks", "8", "--rack-shock-rate", "1e-5"])


def test_all_censored_trace_exits_readably(tmp_path):
    path = _write_tiny_trace(tmp_path, failures=False)
    with pytest.raises(SystemExit, match="right-censored"):
        main(["--trace", str(path), "--trials", "10"])


def test_help_epilog_points_at_trace_docs(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--help"])
    out = capsys.readouterr().out
    assert "docs/traces.md" in out
    assert "--trace-replay" in out
    assert "docs/index.md" in out


def test_multi_array_shock_run_notes_the_marginal_law(capsys):
    """The vectorized path drops cross-array shock coupling; with
    several arrays and active shocks the table must say so."""
    assert main(["--trials", "100", "--seed", "0", "--mttf", "20000",
                 "--arrays", "3", "--racks", "8",
                 "--rack-shock-rate", "1e-4"]) == 0
    out = capsys.readouterr().out
    assert "per-array marginal shock law" in out
    # A single-array run is exact and must not carry the note.
    assert main(["--trials", "100", "--seed", "0", "--mttf", "20000",
                 "--racks", "8", "--rack-shock-rate", "1e-4"]) == 0
    assert "marginal shock law" not in capsys.readouterr().out


# --------------------------------------------------------------------------- #
# Scenario specs: --spec / --dump-spec and the silent-no-op flag rejections
# --------------------------------------------------------------------------- #
def test_events_only_flags_rejected_outside_events_mode():
    """--stripes & co. used to be quietly ignored by the vectorized
    runner; now they name themselves and point at --mode events."""
    with pytest.raises(SystemExit, match="--stripes"):
        main(["--stripes", "64", "--trials", "10"])
    with pytest.raises(SystemExit, match="--scrub-interval"):
        main(["--scrub-interval", "100", "--trials", "10"])
    with pytest.raises(SystemExit, match="--rebuild-streams"):
        main(["--rebuild-streams", "1.5", "--rare-event"])
    with pytest.raises(SystemExit, match="--write-rate"):
        main(["--write-rate", "0.5", "--trials", "10"])


def test_rare_tuning_flags_rejected_in_events_mode():
    with pytest.raises(SystemExit, match="--rare-target-rel-se"):
        main(["--mode", "events", "--rare-target-rel-se", "0.1"])
    with pytest.raises(SystemExit, match="--rare-max-cycles"):
        main(["--mode", "events", "--rare-max-cycles", "100"])


def test_events_only_flags_still_work_in_events_mode(capsys):
    assert main(["--mode", "events", "--trials", "2", "--seed", "0",
                 "--stripes", "32", "--mttf", "2000",
                 "--scrub-interval", "100", "--horizon", "20000"]) == 0
    assert "Event-driven trajectories" in capsys.readouterr().out


def test_dump_spec_prints_the_effective_toml(capsys):
    assert main(["--code", "sd(n=8,r=16,m=2,s=2)", "--rare-event",
                 "--dump-spec"]) == 0
    out = capsys.readouterr().out
    assert 'spec = "sd(n=8,r=16,m=2,s=2)"' in out
    assert 'mode = "rare"' in out
    assert out.startswith("version = 1")


def test_spec_flag_loads_a_committed_spec(tmp_path, capsys):
    path = tmp_path / "scenario.toml"
    path.write_text('version = 1\n[code]\nspec = "rs(n=8,r=16,m=1)"\n'
                    "[estimator]\ntrials = 50\nseed = 0\n")
    assert main(["--spec", str(path)]) == 0
    assert "MTTDL (sim)" in capsys.readouterr().out
    with pytest.raises(SystemExit, match="does not exist"):
        main(["--spec", str(tmp_path / "missing.toml")])


def test_help_epilog_points_at_scenario_docs(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--help"])
    out = capsys.readouterr().out
    assert "docs/scenarios.md" in out
    assert "--dump-spec" in out
