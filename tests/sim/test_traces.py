"""Failure traces: loading, censoring, survival fits, engine plumbing.

The headline acceptance criterion of the trace tentpole lives here:
an :class:`EmpiricalLifetime` fitted on a seeded exponential-generated
trace reproduces the analytic ``mttdl_arr_m_parity`` within 3 sigma in
*both* the vectorized runner and the rare-event estimator.
"""

import io
import math

import numpy as np
import pytest

from repro.reliability.markov import mttdl_arr_m_parity
from repro.sim.domains import FailureDomains
from repro.sim.events import ClusterSimulation, Scenario
from repro.sim.lifetimes import (
    BiasedLifetime,
    DeterministicRepair,
    ExponentialLifetime,
    ExponentialRepair,
    WeibullLifetime,
)
from repro.sim.montecarlo import simulate_array_lifetimes
from repro.sim.rare import estimate_rare_mttdl
from repro.sim.traces import (
    EmpiricalLifetime,
    FailureTrace,
    KaplanMeierLifetime,
    TraceReplayLifetime,
    concatenate_traces,
    generate_trace,
    kaplan_meier,
    load_drive_stats_csv,
    nelson_aalen,
    write_drive_stats_csv,
)
from repro.codes.registry import parse_code_spec


def _trace(durations, observed):
    return FailureTrace(np.asarray(durations, dtype=float),
                        np.asarray(observed, dtype=bool))


# --------------------------------------------------------------------------- #
# Loader
# --------------------------------------------------------------------------- #
def _csv(text: str) -> FailureTrace:
    return load_drive_stats_csv(io.StringIO(text))


def test_loader_reduces_snapshots_with_censoring():
    trace = _csv(
        "date,serial_number,model,capacity_bytes,failure\n"
        "2024-01-01,A,x,1,0\n"
        "2024-01-02,A,x,1,0\n"
        "2024-01-03,A,x,1,1\n"       # A fails on day 3 -> 72 h observed
        "2024-01-01,B,x,1,0\n"
        "2024-01-02,B,x,1,0\n")      # B censored after 2 days -> 48 h
    assert trace.num_devices == 2
    assert trace.num_failures == 1
    assert trace.num_censored == 1
    by_duration = dict(zip(trace.durations, trace.observed))
    assert by_duration[72.0] and not by_duration[48.0]


def test_loader_ignores_rows_after_failure_and_extra_columns():
    trace = _csv(
        "date,serial_number,failure,smart_9_raw\n"
        "2024-01-01,A,1,123\n"
        "2024-01-02,A,0,456\n")      # stale post-failure row: ignored
    assert trace.num_devices == 1
    assert trace.durations[0] == 24.0
    assert trace.observed[0]


def test_loader_clear_errors():
    with pytest.raises(ValueError, match="does not exist"):
        load_drive_stats_csv("/no/such/trace.csv")
    with pytest.raises(ValueError, match="is empty"):
        _csv("")
    with pytest.raises(ValueError, match="no data rows"):
        _csv("date,serial_number,failure\n")
    with pytest.raises(ValueError, match="missing required column"):
        _csv("date,serial,died\n2024-01-01,A,0\n")
    with pytest.raises(ValueError, match="unparsable date"):
        _csv("date,serial_number,failure\nJan 1,A,0\n")
    with pytest.raises(ValueError, match="failure must be 0 or 1"):
        _csv("date,serial_number,failure\n2024-01-01,A,yes\n")


def test_csv_round_trip_quantises_to_snapshot_days():
    original = generate_trace(ExponentialLifetime(700.0), 40,
                              observation_hours=2000.0, seed=5)
    buffer = io.StringIO()
    write_drive_stats_csv(original, buffer)
    buffer.seek(0)
    back = load_drive_stats_csv(buffer)
    assert back.num_devices == original.num_devices
    assert back.num_failures == original.num_failures
    np.testing.assert_allclose(
        np.sort(back.durations),
        np.sort(np.ceil(original.durations / 24.0) * 24.0))


# --------------------------------------------------------------------------- #
# Censoring edge cases
# --------------------------------------------------------------------------- #
def test_all_censored_trace_rejected_with_clear_error():
    trace = _trace([100.0, 200.0, 300.0], [False, False, False])
    with pytest.raises(ValueError, match="right-censored"):
        EmpiricalLifetime.fit(trace)
    with pytest.raises(ValueError, match="right-censored"):
        kaplan_meier(trace)
    with pytest.raises(ValueError, match="right-censored"):
        KaplanMeierLifetime.fit(trace)
    # Replay of an all-censored trace is legal (pure exposure)...
    replay = TraceReplayLifetime(trace)
    assert np.all(np.isinf(replay.sample(np.random.default_rng(0), 3)))
    # ...but its observed-failure mean is as undefined as the fits.
    with pytest.raises(ValueError, match="right-censored"):
        replay.mean_hours


def test_single_failure_trace_fits_a_one_bin_model():
    trace = _trace([500.0, 800.0, 900.0], [True, False, False])
    fitted = EmpiricalLifetime.fit(trace, bins=8)
    # One observed failure -> one hazard interval, MLE = 1 / exposure.
    assert fitted.hazards.shape == (1,)
    assert fitted.hazards[0] == pytest.approx(1.0 / 2200.0)
    assert fitted.mean_hours == pytest.approx(2200.0)
    km = kaplan_meier(trace)
    assert km.values[-1] == pytest.approx(2.0 / 3.0)


def test_tied_failure_times_share_one_km_step_and_fit_cleanly():
    trace = _trace([100.0, 100.0, 100.0, 100.0, 250.0, 400.0],
                   [True, True, True, True, True, False])
    km = kaplan_meier(trace)
    assert km.times.tolist() == [100.0, 250.0]
    # Four tied failures leave one step: S(100) = 1 - 4/6.
    assert km.at(100.0) == pytest.approx(2.0 / 6.0)
    na = nelson_aalen(trace)
    assert na.at(100.0) == pytest.approx(4.0 / 6.0)
    # The piecewise fit must not divide by a zero-width interval even
    # when quantile edges collapse onto the tied value.
    fitted = EmpiricalLifetime.fit(trace, bins=6)
    assert np.all(np.isfinite(fitted.hazards))
    assert fitted.hazards[-1] > 0.0
    assert fitted.mean_hours > 0.0


def test_km_and_piecewise_agree_on_uncensored_exponential_sample():
    """On a fully observed exponential sample the product-limit curve,
    exp(-Nelson-Aalen) and the piecewise-exponential fit are three
    views of one distribution."""
    trace = generate_trace(ExponentialLifetime(1000.0), 3000,
                           observation_hours=1e9, seed=1)
    assert trace.num_censored == 0
    km = kaplan_meier(trace)
    na = nelson_aalen(trace)
    fitted = EmpiricalLifetime.fit(trace, bins=10)
    grid = np.array([100.0, 500.0, 1000.0, 2000.0])
    np.testing.assert_allclose(km.at(grid), np.exp(-na.at(grid)),
                               atol=0.01)
    np.testing.assert_allclose(np.exp(fitted.log_survival(grid)),
                               km.at(grid), atol=0.02)
    km_model = KaplanMeierLifetime.fit(trace)
    assert km_model.mean_hours == pytest.approx(fitted.mean_hours,
                                                rel=0.05)


# --------------------------------------------------------------------------- #
# EmpiricalLifetime protocol
# --------------------------------------------------------------------------- #
def test_single_bin_empirical_is_exponential():
    model = EmpiricalLifetime(np.empty(0), np.array([1e-3]))
    reference = ExponentialLifetime(1000.0)
    x = np.array([0.0, 100.0, 2500.0])
    np.testing.assert_allclose(model.log_pdf(x), reference.log_pdf(x))
    np.testing.assert_allclose(model.log_survival(x),
                               reference.log_survival(x))
    assert model.mean_hours == pytest.approx(1000.0)
    assert model.mean_minimum_hours(8) == pytest.approx(125.0)


def test_empirical_sampling_matches_its_own_distribution():
    model = EmpiricalLifetime(np.array([200.0, 800.0]),
                              np.array([2e-3, 5e-4, 1.5e-3]))
    draws = model.sample(np.random.default_rng(0), 300_000)
    assert draws.mean() == pytest.approx(model.mean_hours, rel=0.01)
    for t in (100.0, 400.0, 1200.0):
        empirical = (draws > t).mean()
        assert empirical == pytest.approx(
            math.exp(model.log_survival(t)), abs=0.005)
    # log_pdf integrates to 1.
    grid = np.linspace(0.0, 30_000.0, 300_001)
    density = np.exp(model.log_pdf(grid))
    integral = float(((density[1:] + density[:-1]) / 2.0
                      * np.diff(grid)).sum())
    assert integral == pytest.approx(1.0, abs=1e-4)


def test_empirical_time_scaled_and_validation():
    model = EmpiricalLifetime(np.array([300.0]), np.array([1e-3, 2e-3]))
    fast = model.time_scaled(3.0)
    assert fast.mean_hours == pytest.approx(model.mean_hours / 3.0)
    np.testing.assert_allclose(fast.breakpoints, [100.0])
    np.testing.assert_allclose(fast.hazards, [3e-3, 6e-3])
    with pytest.raises(ValueError, match="final hazard"):
        EmpiricalLifetime(np.array([100.0]), np.array([1e-3, 0.0]))
    with pytest.raises(ValueError, match="strictly increasing"):
        EmpiricalLifetime(np.array([200.0, 100.0]),
                          np.array([1e-3, 1e-3, 1e-3]))
    with pytest.raises(ValueError, match="interior breakpoints"):
        EmpiricalLifetime(np.array([100.0]), np.array([1e-3]))


def test_biased_lifetime_accelerates_empirical_via_hazard_scaling():
    model = EmpiricalLifetime(np.array([500.0]), np.array([1e-3, 2e-3]))
    biased = BiasedLifetime.accelerated(model, 10.0)
    assert isinstance(biased.proposal, EmpiricalLifetime)
    # Proportional-hazards proposal: breakpoints unchanged, hazards
    # multiplied (for a constant hazard this equals the exponential
    # AFT rule exactly; in general the mean ratio is close to, not
    # exactly, the factor).
    np.testing.assert_allclose(biased.proposal.breakpoints,
                               model.breakpoints)
    np.testing.assert_allclose(biased.proposal.hazards,
                               model.hazards * 10.0)
    assert biased.acceleration > 5.0
    # Importance weights average to 1 under a *mild* proposal (strong
    # acceleration hides weight mass in tail draws no finite sample
    # holds -- the very reason the rare estimator scores adaptively).
    mild = BiasedLifetime.accelerated(model, 1.5)
    draws = mild.sample(np.random.default_rng(2), 200_000)
    w = np.exp(mild.log_weight(draws))
    assert w.mean() == pytest.approx(1.0, rel=0.05)


def test_accelerated_empirical_keeps_zero_hazard_regions_aligned():
    """An AFT-scaled proposal would shift a zero-hazard interval off
    the target's and silently lose weight mass; the proportional-
    hazards proposal keeps supports aligned, so E[w] = 1 holds."""
    target = EmpiricalLifetime(np.array([100.0, 200.0]),
                               np.array([0.01, 0.0, 0.005]))
    biased = BiasedLifetime.accelerated(target, 1.5)
    assert isinstance(biased.proposal, EmpiricalLifetime)
    np.testing.assert_allclose(biased.proposal.breakpoints,
                               target.breakpoints)
    np.testing.assert_allclose(biased.proposal.hazards,
                               target.hazards * 1.5)
    draws = biased.sample(np.random.default_rng(0), 200_000)
    # No draw lands where the target has no mass...
    assert not np.any((draws > 100.0) & (draws <= 200.0))
    # ...and the full-draw weights are unbiased.
    w = np.exp(biased.log_weight(draws))
    assert w.mean() == pytest.approx(1.0, rel=0.05)
    # The quasi-renewal diagnostic treats a zero interior hazard as an
    # infinite variation, not a benign one.
    with pytest.warns(RuntimeWarning, match="inf"):
        estimate_rare_mttdl(8, 0.0, m=1, seed=0, lifetime=target,
                            repair=ExponentialRepair(17.8),
                            target_rel_se=0.2)


def test_biased_lifetime_rejects_density_less_models_at_construction():
    """Density-less models must fail fast in accelerated(), not on the
    first log_weight call mid-simulation."""
    trace = _trace([100.0, 200.0, 300.0], [True, True, True])
    with pytest.raises(TypeError, match="log-density"):
        BiasedLifetime.accelerated(KaplanMeierLifetime.fit(trace), 4.0)
    with pytest.raises(TypeError, match="log-density"):
        BiasedLifetime.accelerated(TraceReplayLifetime(trace), 4.0)


# --------------------------------------------------------------------------- #
# KaplanMeierLifetime / TraceReplayLifetime
# --------------------------------------------------------------------------- #
def test_km_lifetime_resamples_support_and_refuses_density():
    trace = _trace([100.0, 200.0, 200.0, 500.0, 900.0],
                   [True, True, True, True, False])
    model = KaplanMeierLifetime.fit(trace)
    draws = model.sample(np.random.default_rng(0), 5000)
    assert set(np.unique(draws)) <= {100.0, 200.0, 500.0}
    # Efron tail: the censored device's survival mass lands on the
    # last observed failure age, so probabilities sum to 1.
    assert model.probabilities.sum() == pytest.approx(1.0)
    with pytest.raises(TypeError, match="no density"):
        model.log_pdf(100.0)
    scaled = model.time_scaled(2.0)
    assert scaled.mean_hours == pytest.approx(model.mean_hours / 2.0)


def test_trace_replay_deals_every_record_once_per_deck():
    trace = _trace([10.0, 20.0, 30.0, 40.0], [True, True, False, True])
    replay = TraceReplayLifetime(trace)
    first_deck = replay.sample(np.random.default_rng(0), 4)
    finite = sorted(x for x in first_deck if math.isfinite(x))
    assert finite == [10.0, 20.0, 40.0]
    assert np.isinf(first_deck).sum() == 1
    # The deck reshuffles and deals the same multiset again.
    second_deck = replay.sample(np.random.default_rng(1), 4)
    assert sorted(x for x in second_deck
                  if math.isfinite(x)) == [10.0, 20.0, 40.0]
    with pytest.raises(TypeError, match="verbatim"):
        replay.log_pdf(10.0)
    faster = replay.time_scaled(2.0)
    assert faster.trace.durations.tolist() == [5.0, 10.0, 15.0, 20.0]


def test_vectorized_runner_rejects_trace_replay():
    trace = _trace([10.0, 20.0], [True, True])
    with pytest.raises(TypeError, match="event engine"):
        simulate_array_lifetimes(8, 0.0, 10, seed=0,
                                 lifetime=TraceReplayLifetime(trace))


def test_event_engine_replays_observed_timestamps_verbatim():
    """n observed records, deterministic repair: the engine must fail
    devices at exactly the traced ages (whoever gets which record),
    and an all-censored trace must never fail anything."""
    durations = [3000.0, 100.0, 150.0, 4000.0]
    trace = _trace(durations, [True] * 4)
    scenario = Scenario(code=parse_code_spec("rs(n=4,r=4,m=1)"),
                        num_arrays=1, stripes_per_array=4,
                        lifetime=TraceReplayLifetime(trace),
                        repair=DeterministicRepair(1000.0),
                        horizon_hours=10_000.0)
    result = ClusterSimulation(scenario, seed=0).run()
    # 100 h and 150 h land within one (slow, fixed) rebuild window:
    # data loss at the second-earliest traced age, whatever the
    # shuffle dealt which record to which device.
    assert result.lost_data
    assert result.time_to_data_loss == pytest.approx(150.0)

    censored = _trace(durations, [False] * 4)
    scenario2 = Scenario(code=parse_code_spec("rs(n=4,r=4,m=1)"),
                        num_arrays=1, stripes_per_array=4,
                        lifetime=TraceReplayLifetime(censored),
                        repair=DeterministicRepair(1000.0),
                        horizon_hours=10_000.0)
    result2 = ClusterSimulation(scenario2, seed=0).run()
    assert not result2.lost_data
    assert result2.event_counts["device_failure"] == 0


# --------------------------------------------------------------------------- #
# Acceptance criterion: fitted-on-exponential recovers the chain
# --------------------------------------------------------------------------- #
def test_fitted_exponential_trace_recovers_chain_in_vectorized_runner():
    mttf = 1000.0
    trace = generate_trace(ExponentialLifetime(mttf), 30_000,
                           observation_hours=5.0 * mttf, seed=0)
    fitted = EmpiricalLifetime.fit(trace, bins=6)
    result = simulate_array_lifetimes(
        8, 0.0, 400, seed=1, m=1, lifetime=fitted,
        repair=ExponentialRepair(17.8))
    low, high = result.mttdl_confidence(z=3.0)
    anchor = mttdl_arr_m_parity(8, 1.0 / mttf, 1.0 / 17.8, 0.0, 1)
    assert low <= anchor <= high, (low, anchor, high)


def test_fitted_exponential_trace_recovers_chain_in_rare_estimator():
    """The paper's true 1/lambda = 500,000 h at m = 2 (~1e12 h MTTDL),
    reached from a fitted trace via the quasi-renewal decomposition."""
    mttf = 500_000.0
    trace = generate_trace(ExponentialLifetime(mttf), 30_000,
                           observation_hours=5.0 * mttf, seed=2)
    fitted = EmpiricalLifetime.fit(trace, bins=6)
    result = estimate_rare_mttdl(
        8, 4.366e-9, m=2, seed=3, lifetime=fitted,
        repair=ExponentialRepair(17.8), target_rel_se=0.05,
        batch_cycles=20_000)
    low, high = result.mttdl_confidence(z=3.0)
    anchor = mttdl_arr_m_parity(8, 1.0 / mttf, 1.0 / 17.8, 4.366e-9, 2)
    assert low <= anchor <= high, (low, anchor, high)
    assert result.mttdl_hours > 1e11
    assert result.effective_sample_size > 0.05 * result.cycles


def test_rare_estimator_rejects_km_and_domains_with_empirical():
    trace = generate_trace(ExponentialLifetime(1000.0), 500,
                           observation_hours=5000.0, seed=4)
    with pytest.raises(TypeError, match="piecewise-exponential"):
        estimate_rare_mttdl(8, 0.0, m=1, seed=0,
                            lifetime=KaplanMeierLifetime.fit(trace))
    with pytest.raises(ValueError, match="correlated failure domains"):
        estimate_rare_mttdl(
            8, 0.0, m=1, seed=0,
            lifetime=EmpiricalLifetime.fit(trace),
            domains=FailureDomains(racks=4,
                                   rack_shock_rate_per_hour=1e-5))
    # An inert spec (pure topology) is a statistical no-op and runs on
    # the plain quasi-renewal path.
    inert = estimate_rare_mttdl(
        8, 0.0, m=1, seed=0,
        lifetime=EmpiricalLifetime.fit(trace),
        repair=ExponentialRepair(17.8),
        domains=FailureDomains(racks=4), target_rel_se=0.1)
    assert inert.mttdl_hours > 0


def test_rare_estimator_warns_on_strongly_bent_empirical_hazard():
    """The quasi-renewal decomposition is only exact for near-constant
    hazards; a bathtub-grade fit must say so out loud."""
    import warnings

    bent = EmpiricalLifetime(np.array([100.0]), np.array([5e-3, 1e-3]))
    with pytest.warns(RuntimeWarning, match="quasi-renewal"):
        estimate_rare_mttdl(8, 0.0, m=1, seed=0, lifetime=bent,
                            repair=ExponentialRepair(17.8),
                            target_rel_se=0.1)
    flat = EmpiricalLifetime(np.array([100.0]),
                             np.array([1.1e-3, 1e-3]))
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        estimate_rare_mttdl(8, 0.0, m=1, seed=0, lifetime=flat,
                            repair=ExponentialRepair(17.8),
                            target_rel_se=0.1)


# --------------------------------------------------------------------------- #
# Generators
# --------------------------------------------------------------------------- #
def test_generate_trace_censors_at_the_observation_window():
    trace = generate_trace(WeibullLifetime(800.0, 2.0), 2000,
                           observation_hours=600.0, seed=6)
    assert trace.durations.max() <= 600.0
    censored = trace.durations[~trace.observed]
    assert np.all(censored == 600.0)
    assert 0 < trace.num_failures < trace.num_devices


def test_concatenate_traces_pools_cohorts():
    a = generate_trace(ExponentialLifetime(500.0), 100, 1000.0, seed=7)
    b = generate_trace(ExponentialLifetime(2000.0), 50, 1000.0, seed=8)
    pooled = concatenate_traces(a, b)
    assert pooled.num_devices == 150
    assert pooled.num_failures == a.num_failures + b.num_failures
    with pytest.raises(ValueError):
        concatenate_traces()
