"""Tests for the Markov chain, the MTTDL model and the coverage configurator."""

import pytest

from repro.reliability import (
    CodeReliability,
    CorrelatedSectorModel,
    IndependentSectorModel,
    SystemParameters,
    candidate_coverages,
    coverage_for_burst,
    critical_mode_chain,
    m_parity_chain,
    mean_time_to_absorption,
    mttdl_arr_closed_form,
    mttdl_arr_m_parity,
    mttdl_arr_markov,
    mttdl_arr_two_parity,
    mttdl_array,
    mttdl_array_general,
    mttdl_system,
    number_of_arrays,
    p_array,
    rank_coverages,
    recommend_coverage,
)


class TestMarkovModel:
    def test_closed_form_matches_numerical_chain(self):
        lam, mu = 1 / 500_000, 1 / 17.8
        for p_arr in (0.0, 1e-6, 1e-3, 0.5, 1.0):
            assert mttdl_arr_markov(8, lam, mu, p_arr) == pytest.approx(
                mttdl_arr_closed_form(8, lam, mu, p_arr), rel=1e-9)

    def test_generator_rows_sum_to_zero(self):
        chain = critical_mode_chain(8, 1 / 500_000, 1 / 17.8, 1e-3)
        assert chain.sum(axis=1) == pytest.approx([0, 0, 0])

    def test_absorbing_start_state(self):
        chain = critical_mode_chain(8, 1e-6, 1e-1, 0.1)
        assert mean_time_to_absorption(chain, absorbing=[2], start=2) == 0.0

    def test_mttdl_decreases_with_p_arr(self):
        lam, mu = 1 / 500_000, 1 / 17.8
        values = [mttdl_arr_closed_form(8, lam, mu, p) for p in (0, 1e-4, 1e-2, 1)]
        assert values == sorted(values, reverse=True)

    def test_two_parity_arrays_are_more_reliable(self):
        lam, mu = 1 / 500_000, 1 / 17.8
        assert mttdl_arr_two_parity(8, lam, mu, 1e-3) > \
            mttdl_arr_closed_form(8, lam, mu, 1e-3)

    def test_general_chain_degenerates_to_m1_and_m2(self):
        lam, mu = 1 / 500_000, 1 / 17.8
        for p_arr in (0.0, 1e-4, 0.3, 1.0):
            assert mttdl_arr_m_parity(8, lam, mu, p_arr, m=1) == \
                pytest.approx(mttdl_arr_closed_form(8, lam, mu, p_arr),
                              rel=1e-9)
            assert mttdl_arr_m_parity(8, lam, mu, p_arr, m=2) == \
                pytest.approx(mttdl_arr_two_parity(8, lam, mu, p_arr),
                              rel=1e-9)

    def test_general_chain_monotone_in_m(self):
        lam, mu = 1 / 500_000, 1 / 17.8
        values = [mttdl_arr_m_parity(8, lam, mu, 1e-3, m=m)
                  for m in (1, 2, 3, 4)]
        assert values == sorted(values)

    def test_general_chain_rows_sum_to_zero(self):
        chain = m_parity_chain(8, 1 / 500_000, 1 / 17.8, 1e-3, m=3)
        assert chain.shape == (5, 5)
        assert chain.sum(axis=1) == pytest.approx([0.0] * 5)

    def test_general_chain_validation(self):
        with pytest.raises(ValueError):
            m_parity_chain(8, 1e-6, 1e-1, 0.1, m=0)
        with pytest.raises(ValueError):
            m_parity_chain(4, 1e-6, 1e-1, 0.1, m=4)

    def test_mttdl_array_general_matches_m1_closed_form(self):
        params = SystemParameters()
        model = IndependentSectorModel.from_p_bit(1e-12, params.r)
        code = CodeReliability.stair([1, 2])
        assert mttdl_array_general(code, params, model) == pytest.approx(
            mttdl_array(code, params, model), rel=1e-9)
        # And for m = 2 it exceeds the m = 1 value with the same code.
        params2 = SystemParameters(m=2)
        assert mttdl_array_general(code, params2, model) > \
            mttdl_array_general(code, params, model)


class TestSystemModel:
    @pytest.fixture
    def params(self):
        return SystemParameters()

    def test_default_parameters_match_paper(self, params):
        assert params.user_data_bytes == 10 * 2 ** 50
        assert params.device_capacity_bytes == 300 * 2 ** 30
        assert params.n == 8 and params.r == 16 and params.m == 1
        assert params.failure_rate == pytest.approx(1 / 500_000)
        assert params.rebuild_rate == pytest.approx(1 / 17.8)
        assert params.stripes_per_array == int(300 * 2 ** 30 // (512 * 16))

    def test_storage_efficiency_equation_8(self, params):
        assert CodeReliability.reed_solomon().storage_efficiency(params) == \
            pytest.approx(16 * 7 / (16 * 8))
        assert CodeReliability.stair([1, 2]).storage_efficiency(params) == \
            pytest.approx((16 * 7 - 3) / (16 * 8))

    def test_number_of_arrays_matches_paper_table(self, params):
        """§7.2 lists N_arr for s = 0..12; spot-check a few entries."""
        expected = {0: 4994, 1: 5039, 2: 5085, 3: 5131, 4: 5179, 12: 5593}
        for s, n_arr in expected.items():
            code = (CodeReliability.reed_solomon() if s == 0
                    else CodeReliability.stair([s]))
            assert number_of_arrays(code, params) == n_arr

    def test_p_array_bounds(self, params):
        model = IndependentSectorModel.from_p_bit(1e-12, params.r)
        value = p_array(CodeReliability.stair([1, 2]), params, model)
        assert 0.0 <= value <= 1.0

    def test_mttdl_array_requires_m_equal_one(self):
        params = SystemParameters(m=2)
        model = IndependentSectorModel.from_p_bit(1e-12, params.r)
        with pytest.raises(ValueError):
            mttdl_array(CodeReliability.reed_solomon(), params, model)

    def test_stair_beats_rs_by_orders_of_magnitude(self, params):
        """Figure 17(a) at P_bit = 1e-14."""
        model = IndependentSectorModel.from_p_bit(1e-14, params.r)
        rs = mttdl_system(CodeReliability.reed_solomon(), params, model)
        stair = mttdl_system(CodeReliability.stair([1]), params, model)
        assert stair > 100 * rs

    def test_stair_e12_matches_sd2_under_bursts(self, params):
        """Figure 18(b): STAIR e=(1,2) ~ SD s=2 under correlated failures."""
        model = CorrelatedSectorModel.from_p_bit(1e-12, params.r,
                                                 b1=0.98, alpha=1.79)
        stair = mttdl_system(CodeReliability.stair([1, 2]), params, model)
        sd = mttdl_system(CodeReliability.sd(2), params, model)
        assert stair == pytest.approx(sd, rel=0.1)

    def test_unknown_code_kind_rejected(self, params):
        model = IndependentSectorModel.from_p_bit(1e-12, params.r)
        with pytest.raises(ValueError):
            CodeReliability(kind="fountain").p_str(params, model)

    def test_labels(self):
        assert CodeReliability.reed_solomon().label() == "RS"
        assert CodeReliability.sd(2).label() == "SD s=2"
        assert "STAIR" in CodeReliability.stair([1, 2]).label()


class TestConfigurator:
    @pytest.fixture
    def params(self):
        return SystemParameters()

    def test_coverage_for_burst(self):
        assert coverage_for_burst(4) == (1, 4)
        assert coverage_for_burst(2, extra_single_failures=2) == (1, 1, 2)
        with pytest.raises(ValueError):
            coverage_for_burst(0)

    def test_candidate_coverages(self):
        assert set(candidate_coverages(3, r=16)) == {(3,), (1, 2), (1, 1, 1)}
        assert set(candidate_coverages(3, r=2)) == {(1, 2), (1, 1, 1)}

    def test_recommendation_independent_failures(self, params):
        """§7.2.1: under independent failures e=(1,2) is the best s=3 choice."""
        model = IndependentSectorModel.from_p_bit(1e-10, params.r)
        assert recommend_coverage(3, params, model).e == (1, 2)

    def test_recommendation_bursty_failures(self, params):
        """§7.2.2: under bursty failures e=(s) is the best choice."""
        model = CorrelatedSectorModel.from_p_bit(1e-12, params.r,
                                                 b1=0.9, alpha=1.0)
        assert recommend_coverage(3, params, model).e == (3,)

    def test_ranking_is_sorted(self, params):
        model = IndependentSectorModel.from_p_bit(1e-11, params.r)
        ranking = rank_coverages(candidate_coverages(4, params.r), params, model)
        values = [item.mttdl_hours for item in ranking]
        assert values == sorted(values, reverse=True)

    def test_empty_candidates_and_invalid_budget(self, params):
        model = IndependentSectorModel.from_p_bit(1e-11, params.r)
        assert rank_coverages([], params, model) == []
        with pytest.raises(ValueError):
            recommend_coverage(-1, params, model)
