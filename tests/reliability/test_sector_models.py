"""Tests for the independent and correlated sector-failure models."""

import numpy as np
import pytest

from repro.reliability import (
    CorrelatedSectorModel,
    IndependentSectorModel,
    sector_failure_probability,
)


class TestSectorFailureProbability:
    def test_equation_12(self):
        p_bit = 1e-12
        expected = 1.0 - (1.0 - p_bit) ** (512 * 8)
        assert sector_failure_probability(p_bit) == pytest.approx(expected)
        assert sector_failure_probability(p_bit) == pytest.approx(512 * 8 * p_bit,
                                                                  rel=1e-3)

    def test_bounds(self):
        assert sector_failure_probability(0.0) == 0.0
        assert sector_failure_probability(1.0) == 1.0
        with pytest.raises(ValueError):
            sector_failure_probability(-0.1)


class TestIndependentModel:
    def test_distribution_sums_to_one(self):
        model = IndependentSectorModel(p_sec=1e-3, r=16)
        assert model.p_chk_vector().sum() == pytest.approx(1.0)

    def test_binomial_form(self):
        model = IndependentSectorModel(p_sec=0.1, r=4)
        assert model.p_chk(0) == pytest.approx(0.9 ** 4)
        assert model.p_chk(1) == pytest.approx(4 * 0.1 * 0.9 ** 3)
        assert model.p_chk(4) == pytest.approx(0.1 ** 4)
        assert model.p_chk(5) == 0.0
        assert model.p_chk(-1) == 0.0

    def test_from_p_bit(self):
        model = IndependentSectorModel.from_p_bit(1e-12, r=16)
        assert model.p_sec == pytest.approx(sector_failure_probability(1e-12))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            IndependentSectorModel(p_sec=1.5, r=16)
        with pytest.raises(ValueError):
            IndependentSectorModel(p_sec=0.5, r=0)

    def test_damaged_probability(self):
        model = IndependentSectorModel(p_sec=1e-4, r=16)
        assert model.p_chunk_damaged() == pytest.approx(1 - (1 - 1e-4) ** 16)


class TestCorrelatedModel:
    def test_distribution_sums_to_one(self):
        model = CorrelatedSectorModel(p_sec=1e-4, r=16, b1=0.98, alpha=1.79)
        assert model.p_chk_vector().sum() == pytest.approx(1.0)

    def test_burst_pmf_properties(self):
        model = CorrelatedSectorModel(p_sec=1e-4, r=16, b1=0.98, alpha=1.79)
        assert model.burst_pmf.sum() == pytest.approx(1.0)
        assert model.burst_pmf[0] == pytest.approx(0.98)
        # The Pareto tail is decreasing except for the final bucket, which
        # absorbs the truncated mass of bursts longer than r.
        assert np.all(np.diff(model.burst_pmf[1:-1]) <= 1e-12)
        assert 1.0 < model.mean_burst_length < 1.2

    def test_burstier_parameters_have_heavier_tails(self):
        bursty = CorrelatedSectorModel(p_sec=1e-4, r=16, b1=0.9, alpha=1.0)
        mild = CorrelatedSectorModel(p_sec=1e-4, r=16, b1=0.9999, alpha=4.0)
        assert bursty.mean_burst_length > mild.mean_burst_length
        assert bursty.burst_cdf()[3] < mild.burst_cdf()[3]

    def test_expected_sector_failures_match_independent_model(self):
        """Both models keep the same expected number of failed sectors."""
        p_sec, r = 1e-4, 16
        independent = IndependentSectorModel(p_sec, r)
        correlated = CorrelatedSectorModel(p_sec, r, b1=0.98, alpha=1.79)
        expectation_ind = sum(i * independent.p_chk(i) for i in range(r + 1))
        expectation_cor = sum(i * correlated.p_chk(i) for i in range(r + 1))
        assert expectation_cor == pytest.approx(expectation_ind, rel=0.02)

    def test_correlated_piles_failures_into_one_chunk(self):
        """Multi-failure chunks are far more likely under the bursty model."""
        p_sec, r = 1e-4, 16
        independent = IndependentSectorModel(p_sec, r)
        correlated = CorrelatedSectorModel(p_sec, r, b1=0.9, alpha=1.0)
        assert correlated.p_chk(3) > 100 * independent.p_chk(3)

    def test_r_equal_one(self):
        model = CorrelatedSectorModel(p_sec=1e-4, r=1, b1=0.9, alpha=1.0)
        assert model.burst_pmf[0] == pytest.approx(1.0)
        assert model.p_chk(0) + model.p_chk(1) == pytest.approx(1.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CorrelatedSectorModel(p_sec=1e-4, r=16, b1=0.0)
        with pytest.raises(ValueError):
            CorrelatedSectorModel(p_sec=1e-4, r=16, alpha=0.0)
