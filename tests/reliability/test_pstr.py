"""Tests for P_str: generic enumeration vs the closed forms of Appendix B."""

import pytest

from repro.reliability import (
    CorrelatedSectorModel,
    IndependentSectorModel,
    pstr_generic,
    pstr_reed_solomon,
    pstr_sd,
    pstr_sd_generic,
    pstr_stair_all_ones,
    pstr_stair_one_one_plus,
    pstr_stair_one_plus,
    pstr_stair_single,
    pstr_stair_two_plus,
)

N, M, R = 8, 1, 16

# The agreement checks use exaggerated per-sector failure probabilities so the
# enumerated probabilities sit well above the double-precision noise floor
# (with realistic P_bit the interesting P_str values are ~1e-16, where both
# the closed forms and the enumeration are dominated by cancellation error).
MODELS = [
    IndependentSectorModel(1e-3, R),
    IndependentSectorModel.from_p_bit(1e-8, R),
    CorrelatedSectorModel(2e-3, R, b1=0.9, alpha=1.3),
    CorrelatedSectorModel.from_p_bit(1e-8, R, b1=0.98, alpha=1.79),
]


@pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__ + str(m.p_sec))
class TestClosedFormsAgreeWithGenericEnumeration:
    def test_equation_19_single_chunk(self, model):
        for s in (1, 2, 3, 5):
            assert pstr_generic((s,), N, M, model, R) == pytest.approx(
                pstr_stair_single(s, N, M, model), rel=1e-6, abs=1e-12)

    def test_equation_20_one_plus(self, model):
        for s in (2, 3, 4, 6):
            assert pstr_generic((1, s - 1), N, M, model, R) == pytest.approx(
                pstr_stair_one_plus(s, N, M, model), rel=1e-6, abs=1e-12)

    def test_equation_21_two_plus(self, model):
        for s in (4, 5, 6):
            assert pstr_generic((2, s - 2), N, M, model, R) == pytest.approx(
                pstr_stair_two_plus(s, N, M, model), rel=1e-6, abs=1e-12)

    def test_equation_22_one_one_plus(self, model):
        for s in (3, 4, 5):
            assert pstr_generic((1, 1, s - 2), N, M, model, R) == pytest.approx(
                pstr_stair_one_one_plus(s, N, M, model), rel=1e-6, abs=1e-12)

    def test_equation_23_all_ones(self, model):
        for s in (1, 2, 3, 4):
            assert pstr_generic((1,) * s, N, M, model, R) == pytest.approx(
                pstr_stair_all_ones(s, N, M, model), rel=1e-6, abs=1e-12)

    def test_equations_24_26_sd(self, model):
        for s in (1, 2, 3):
            assert pstr_sd_generic(s, N, M, model, R) == pytest.approx(
                pstr_sd(s, N, M, model), rel=1e-6, abs=1e-12)


class TestOrderings:
    @pytest.fixture
    def independent(self):
        return IndependentSectorModel.from_p_bit(1e-10, R)

    @pytest.fixture
    def bursty(self):
        return CorrelatedSectorModel.from_p_bit(1e-10, R, b1=0.9, alpha=1.0)

    def test_rs_is_worst(self, independent):
        rs = pstr_reed_solomon(N, M, independent)
        assert rs > pstr_generic((1,), N, M, independent, R)
        assert rs == pytest.approx(1 - independent.p_chk(0) ** (N - M))

    def test_more_coverage_never_hurts(self, independent):
        assert pstr_generic((1, 2), N, M, independent, R) <= pstr_generic(
            (1, 1), N, M, independent, R)
        assert pstr_generic((1, 1, 1), N, M, independent, R) <= pstr_generic(
            (1, 1), N, M, independent, R)

    def test_sd_is_lower_bound_for_same_s(self, independent, bursty):
        """SD covers any placement of s failures, so its P_str is a lower
        bound over every STAIR e with the same total s."""
        for model in (independent, bursty):
            sd = pstr_sd_generic(3, N, M, model, R)
            for e in ((3,), (1, 2), (1, 1, 1)):
                assert sd <= pstr_generic(e, N, M, model, R) + 1e-18

    def test_split_coverage_wins_under_independent_failures(self, independent):
        assert pstr_generic((1, 2), N, M, independent, R) < pstr_generic(
            (3,), N, M, independent, R)

    def test_concentrated_coverage_wins_under_bursts(self, bursty):
        assert pstr_generic((3,), N, M, bursty, R) < pstr_generic(
            (1, 1, 1), N, M, bursty, R)

    def test_stair_e_max_matches_sd_under_bursts(self, bursty):
        """§7.2.2: STAIR with e=(s) has nearly the same P_str as SD with the
        same s when failures arrive as single-chunk bursts."""
        assert pstr_generic((3,), N, M, bursty, R) == pytest.approx(
            pstr_sd_generic(3, N, M, bursty, R), rel=0.05)

    def test_sd_closed_form_requires_small_s(self, independent):
        with pytest.raises(ValueError):
            pstr_sd(4, N, M, independent)

    def test_probabilities_are_valid(self, independent, bursty):
        for model in (independent, bursty):
            for e in ((1,), (2,), (1, 1), (1, 2), (2, 2), (1, 1, 2)):
                value = pstr_generic(e, N, M, model, R)
                assert 0.0 <= value <= 1.0
