"""The store CLI, driven in-process (no subprocesses)."""

import json

import pytest

from repro.store.cli import main

SMOKE = "examples/store_smoke.toml"


def write_spec(tmp_path, body: str):
    path = tmp_path / "spec.toml"
    path.write_text(body)
    return str(path)


MINIMAL_STORE = """\
version = 1
[code]
spec = "rs(n=5,r=3,m=2)"
[store]
objects = 4
object_bytes = 256
symbol_bytes = 16
operations = 12
clients = 2
"""


def test_smoke_spec_passes_the_integrity_gate(capsys):
    assert main(["--spec", SMOKE, "--check-integrity"]) == 0
    out = capsys.readouterr().out
    assert "integrity check passed" in out
    assert "zero data loss       yes" in out
    assert "fully redundant      yes" in out
    assert "degraded reads" in out


def test_json_output_is_machine_readable(tmp_path, capsys):
    spec = write_spec(tmp_path, MINIMAL_STORE)
    assert main(["--spec", spec, "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["puts"] >= 4
    assert summary["zero_data_loss"] is True
    assert summary["verify_failures"] == 0
    assert "get_p99_s" in summary


def test_seed_and_operations_overrides(tmp_path, capsys):
    spec = write_spec(tmp_path, MINIMAL_STORE)
    assert main(["--spec", spec, "--seed", "5",
                 "--operations", "20", "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["operations"] == 20


def test_spec_without_store_section_is_redirected(tmp_path, capsys):
    spec = write_spec(tmp_path,
                      'version = 1\n[code]\nspec = "rs(n=5,r=3,m=2)"\n')
    assert main(["--spec", spec]) == 2
    assert "repro.sim.cli" in capsys.readouterr().err


def test_missing_file_is_a_clean_error(tmp_path, capsys):
    assert main(["--spec", str(tmp_path / "nope.toml")]) == 2
    assert "error:" in capsys.readouterr().err


def test_invalid_spec_is_a_clean_error(tmp_path, capsys):
    spec = write_spec(tmp_path, MINIMAL_STORE + "zipf_alpha = -2.0\n")
    assert main(["--spec", spec]) == 2
    assert "zipf_alpha" in capsys.readouterr().err


def test_integrity_gate_fails_on_data_loss(tmp_path, capsys):
    # Three simultaneous losses exceed rs(5,3,2)'s coverage and repair
    # is disabled: the gate must go red.
    spec = write_spec(tmp_path, MINIMAL_STORE +
                      "repair = false\nkill_nodes = 3\n"
                      "read_fraction = 1.0\n")
    assert main(["--spec", spec, "--check-integrity"]) == 1
    assert "FAILED" in capsys.readouterr().err


def test_sim_cli_redirects_store_specs_to_the_store(capsys):
    from repro.sim.cli import main as sim_main
    with pytest.raises(SystemExit):
        sim_main(["--spec", SMOKE])
