"""The traffic generator: self-verifying payloads and seeded schedules."""

import asyncio

import numpy as np
import pytest

from repro.codes.registry import parse_code_spec
from repro.scenario.spec import StoreSection
from repro.store.cluster import StoreCluster
from repro.store.traffic import TrafficGenerator, make_payload, verify_payload


# --------------------------------------------------------------------------- #
# Payloads
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("size", [0, 1, 8, 9, 100, 4096])
def test_payloads_are_deterministic_and_self_verifying(size):
    a = make_payload(1234, size)
    b = make_payload(1234, size)
    assert a == b
    assert len(a) == size
    assert verify_payload(a)
    if size > 8:
        assert make_payload(99, size) != a


def test_corruption_is_detected():
    data = bytearray(make_payload(5, 256))
    data[200] ^= 0xFF
    assert not verify_payload(bytes(data))


def test_tiny_payloads_verify_vacuously():
    # Too short to carry the seed header: integrity is size-checked by
    # the cluster metadata instead.
    assert verify_payload(b"abc")


# --------------------------------------------------------------------------- #
# Schedules
# --------------------------------------------------------------------------- #
def make_traffic(seed=0, **kwargs) -> TrafficGenerator:
    store = StoreSection(**{
        "objects": 20, "object_bytes": 512, "symbol_bytes": 16,
        "operations": 200, "clients": 2, **kwargs})
    cluster = StoreCluster(parse_code_spec("rs(n=6,r=4,m=2)"),
                           symbol_bytes=store.symbol_bytes)
    return TrafficGenerator(cluster, store, np.random.SeedSequence(seed))


def test_schedule_is_a_pure_function_of_the_seed():
    a, b = make_traffic(seed=7), make_traffic(seed=7)
    assert a._ops == b._ops
    assert np.array_equal(a._sizes, b._sizes)
    assert np.array_equal(a._payload_seeds, b._payload_seeds)
    c = make_traffic(seed=8)
    assert a._ops != c._ops


def test_read_fraction_mixes_ops():
    traffic = make_traffic(read_fraction=0.5, operations=1000)
    gets = sum(1 for kind, _ in traffic._ops if kind == "get")
    assert 350 < gets < 650
    all_reads = make_traffic(read_fraction=1.0)
    assert all(kind == "get" for kind, _ in all_reads._ops)


def test_zipf_skews_popularity_and_zero_alpha_is_uniform():
    skewed = make_traffic(zipf_alpha=1.5, operations=2000)
    hits = np.bincount([obj for _, obj in skewed._ops], minlength=20)
    assert hits[0] > hits[10]

    uniform = make_traffic(zipf_alpha=0.0, operations=2000)
    hits = np.bincount([obj for _, obj in uniform._ops], minlength=20)
    assert hits.min() > 0.5 * hits.max()


def test_min_object_bytes_draws_a_size_range():
    traffic = make_traffic(min_object_bytes=10, object_bytes=100)
    assert traffic._sizes.min() >= 10
    assert traffic._sizes.max() <= 100
    fixed = make_traffic(object_bytes=64)
    assert set(fixed._sizes.tolist()) == {64}


# --------------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------------- #
def test_closed_loop_run_counts_every_operation():
    traffic = make_traffic(seed=3, operations=80, clients=4)

    async def flow():
        await traffic.load()
        await traffic.run()

    asyncio.run(flow())
    report = traffic.report
    # Preload puts + every scheduled op, no more, no less.
    assert report.puts + report.gets == 20 + 80
    assert report.puts == 20 + sum(
        1 for kind, _ in traffic._ops if kind == "put")
    assert report.verify_failures == 0
    assert report.failed_reads == 0
    assert len(report.put_latencies) == report.puts - 20
    assert len(report.get_latencies) == report.gets
