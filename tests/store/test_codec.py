"""Unit coverage of :class:`repro.store.codec.ObjectCodec`.

Geometry, healthy/degraded round trips across every registry code
family, the parity-only repair path, and configuration errors.
"""

import numpy as np
import pytest

from repro.codes.reed_solomon import ReedSolomonStripeCode
from repro.codes.registry import parse_code_spec
from repro.gf.field import get_field
from repro.store.codec import ObjectCodec, StoreError

CODE_SPECS = [
    "stair(n=4,r=4,m=1,e=(1,))",
    "rs(n=5,r=3,m=2)",
    "sd(n=5,r=4,m=1,s=1)",
    "idr(n=5,r=4,m=1,epsilon=2)",
]


def _codec(spec: str, symbol_bytes: int = 32) -> ObjectCodec:
    return ObjectCodec(parse_code_spec(spec), symbol_bytes=symbol_bytes)


# --------------------------------------------------------------------------- #
# Geometry
# --------------------------------------------------------------------------- #
def test_geometry_matches_the_code():
    codec = _codec("rs(n=6,r=4,m=2)", symbol_bytes=64)
    assert codec.chunk_bytes == 4 * 64
    assert codec.stripe_payload_bytes == codec.code.num_data_symbols * 64
    assert codec.num_stripes(0) == 0
    assert codec.num_stripes(1) == 1
    assert codec.num_stripes(codec.stripe_payload_bytes) == 1
    assert codec.num_stripes(codec.stripe_payload_bytes + 1) == 2


def test_data_columns_are_the_healthy_read_set():
    codec = _codec("rs(n=6,r=4,m=2)")
    # RS puts data in the first n - m columns, parity in the rest.
    assert codec.data_columns == (0, 1, 2, 3)
    stair = _codec("stair(n=4,r=4,m=1,e=(1,))")
    assert set(stair.data_columns) == {
        col for _, col in stair.code.data_positions()}


# --------------------------------------------------------------------------- #
# Round trips
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("spec", CODE_SPECS)
def test_round_trip_healthy_and_degraded(spec):
    codec = _codec(spec)
    rng = np.random.default_rng(7)
    data = rng.bytes(2 * codec.stripe_payload_bytes + 17)
    chunks = codec.encode_object(data)
    assert len(chunks) == codec.num_stripes(len(data))

    healthy = b"".join(codec.decode_stripe(s) for s in chunks)
    assert healthy[:len(data)] == data
    # Padding is deterministic zeros.
    assert healthy[len(data):] == b"\x00" * (len(healthy) - len(data))

    # Degraded: erase one data column everywhere.
    victim = codec.data_columns[0]
    degraded = b"".join(
        codec.decode_stripe([None if j == victim else c
                             for j, c in enumerate(s)])
        for s in chunks)
    assert degraded == healthy


@pytest.mark.parametrize("spec", CODE_SPECS)
def test_rebuild_columns_reconstructs_any_column(spec):
    codec = _codec(spec)
    rng = np.random.default_rng(11)
    stripe = codec.encode_object(rng.bytes(codec.stripe_payload_bytes))[0]
    for victim in range(codec.code.n):
        damaged = [None if j == victim else c for j, c in enumerate(stripe)]
        rebuilt = codec.rebuild_columns(damaged, [victim])
        assert rebuilt == {victim: stripe[victim]}


def test_w16_round_trip_little_endian():
    code = ReedSolomonStripeCode(n=5, r=2, m=2, field=get_field(16))
    codec = ObjectCodec(code, symbol_bytes=32)
    rng = np.random.default_rng(3)
    data = rng.bytes(codec.stripe_payload_bytes)
    stripe = codec.encode_object(data)[0]
    assert codec.decode_stripe(stripe) == data
    # A data chunk is the payload's bytes verbatim (little-endian wire
    # layout round-trips through from_bytes/to_bytes untouched).
    assert codec.decode_stripe([None, *stripe[1:]]) == data


def test_empty_object_is_zero_stripes():
    codec = _codec("rs(n=5,r=3,m=2)")
    assert codec.encode_object(b"") == []


def test_extract_payload_requires_every_data_column():
    codec = _codec("rs(n=5,r=3,m=2)")
    stripe = codec.encode_object(b"x" * codec.stripe_payload_bytes)[0]
    broken = [None, *stripe[1:]]
    with pytest.raises(StoreError, match="decode_stripe"):
        codec.extract_payload(broken)
    # decode_stripe handles the same pattern transparently.
    assert codec.decode_stripe(broken) == b"x" * codec.stripe_payload_bytes


# --------------------------------------------------------------------------- #
# Configuration and shape errors
# --------------------------------------------------------------------------- #
def test_symbol_bytes_must_be_positive():
    with pytest.raises(StoreError, match="symbol_bytes"):
        ObjectCodec(parse_code_spec("rs(n=5,r=3,m=2)"), symbol_bytes=0)


def test_w16_rejects_odd_symbol_bytes():
    code = ReedSolomonStripeCode(n=5, r=2, m=2, field=get_field(16))
    with pytest.raises(StoreError, match="multiple"):
        ObjectCodec(code, symbol_bytes=33)


def test_wrong_column_count_is_rejected():
    codec = _codec("rs(n=5,r=3,m=2)")
    with pytest.raises(StoreError, match="expected 5 columns"):
        codec.decode_stripe([None] * 4)


def test_wrong_chunk_size_is_rejected():
    codec = _codec("rs(n=5,r=3,m=2)")
    stripe = codec.encode_object(b"y" * codec.stripe_payload_bytes)[0]
    stripe[0] = stripe[0][:-1]
    stripe[1] = None  # force the grid path, which validates shapes
    with pytest.raises(StoreError, match="bytes"):
        codec.decode_stripe(stripe)
