"""Property-style round trips: random sizes, keys and erasures, on
both region-ops backends.

Everything a put can produce must come back byte-identical from a get
-- healthy, after losing any coverable set of nodes, and after repair
-- for every code family the registry serves (STAIR, RS, SD; w = 8 and
w = 16), and the bulk kernels must agree bit for bit with the scalar
reference backend on the exact chunk bytes they place on each node.
"""

import asyncio

import numpy as np
import pytest

from repro.codes.reed_solomon import ReedSolomonStripeCode
from repro.codes.registry import parse_code_spec
from repro.gf.field import get_field
from repro.gf.regions import ReferenceRegionOps
from repro.store.cluster import StoreCluster
from repro.store.codec import ObjectCodec

#: (label, factory, max full-column losses the code covers)
CODE_FAMILIES = [
    ("stair", lambda: parse_code_spec("stair(n=5,r=4,m=1,e=(1,))"), 1),
    ("rs8", lambda: parse_code_spec("rs(n=6,r=3,m=2)"), 2),
    ("sd", lambda: parse_code_spec("sd(n=5,r=4,m=1,s=1)"), 1),
    ("rs16", lambda: ReedSolomonStripeCode(n=6, r=2, m=2,
                                           field=get_field(16)), 2),
]


def use_reference_backend(code) -> None:
    """Point a stripe code at the scalar element-at-a-time backend."""
    target = getattr(code, "code", code)  # StairStripeCode wraps StairCode
    target.ops_class = ReferenceRegionOps


def fuzz_sizes(codec: ObjectCodec, rng: np.random.Generator) -> list[int]:
    """Adversarial object sizes: empty, tiny, and every off-by-one
    around the symbol/stripe boundaries, plus random fill."""
    payload = codec.stripe_payload_bytes
    sizes = [0, 1, codec.symbol_bytes - 1, codec.symbol_bytes + 1,
             payload - 1, payload, payload + 1, 2 * payload + 7]
    sizes += [int(s) for s in rng.integers(0, 3 * payload, size=4)]
    return sizes


def fuzz_key(rng: np.random.Generator) -> str:
    alphabet = "abz019_-./:é中"
    return "".join(rng.choice(list(alphabet))
                   for _ in range(int(rng.integers(1, 20))))


@pytest.mark.parametrize("label,factory,coverage", CODE_FAMILIES)
def test_put_erase_get_round_trips_on_both_backends(label, factory,
                                                    coverage):
    rng = np.random.default_rng(np.random.SeedSequence(2024))

    async def exercise(code) -> list[bytes]:
        """Put fuzzed objects, kill a coverable node set, read them all
        degraded, repair, read again healthy; return every read."""
        cluster = StoreCluster(code, symbol_bytes=16)
        sizes = fuzz_sizes(cluster.codec, rng)
        objects = {}
        for size in sizes:
            key = f"{fuzz_key(rng)}-{len(objects)}"
            objects[key] = rng.bytes(size)
            await cluster.put(key, objects[key])

        victims = rng.choice(code.n, size=coverage, replace=False)
        for j in victims:
            cluster.crash_node(int(j))

        reads = []
        for key, expected in objects.items():
            got = await cluster.get(key)
            assert got == expected, (label, key, len(expected))
            reads.append(got)

        while await cluster.repair_once():
            pass
        assert cluster.fully_redundant()
        assert cluster.report.unrecoverable_stripes == 0

        for key, expected in objects.items():
            got = await cluster.get(key)
            assert got == expected
            reads.append(got)
        return reads

    # Same RNG stream both times: identical workload, different backend.
    state = rng.bit_generator.state
    bulk_reads = asyncio.run(exercise(factory()))

    rng.bit_generator.state = state
    ref_code = factory()
    use_reference_backend(ref_code)
    ref_reads = asyncio.run(exercise(ref_code))

    assert bulk_reads == ref_reads


@pytest.mark.parametrize("label,factory,coverage", CODE_FAMILIES)
def test_backends_place_bitwise_identical_chunks(label, factory, coverage):
    """The wire format is backend-independent: every chunk the bulk
    path writes equals the scalar reference's, byte for byte."""
    rng = np.random.default_rng(np.random.SeedSequence(9))
    bulk = ObjectCodec(factory(), symbol_bytes=16)
    ref_code = factory()
    use_reference_backend(ref_code)
    ref = ObjectCodec(ref_code, symbol_bytes=16)

    for size in fuzz_sizes(bulk, rng):
        data = rng.bytes(size)
        chunks_bulk = bulk.encode_object(data)
        chunks_ref = ref.encode_object(data)
        assert chunks_bulk == chunks_ref, (label, size)

        # And the repair path rebuilds the same bytes on both backends.
        for stripe_b, stripe_r in zip(chunks_bulk, chunks_ref):
            victim = int(rng.integers(bulk.code.n))
            damaged_b = [None if j == victim else c
                         for j, c in enumerate(stripe_b)]
            damaged_r = [None if j == victim else c
                         for j, c in enumerate(stripe_r)]
            rebuilt_b = bulk.rebuild_columns(damaged_b, [victim])
            rebuilt_r = ref.rebuild_columns(damaged_r, [victim])
            assert rebuilt_b == rebuilt_r == {victim: stripe_b[victim]}


def test_codecs_from_equal_specs_agree() -> None:
    """The codec is stateless: two instances built from equal specs
    encode identically (content-addressability for chunk placement)."""
    rng = np.random.default_rng(31)
    data = rng.bytes(1000)
    a = ObjectCodec(parse_code_spec("rs(n=6,r=4,m=2)"), symbol_bytes=32)
    b = ObjectCodec(parse_code_spec("rs(n=6,r=4,m=2)"), symbol_bytes=32)
    assert a.encode_object(data) == b.encode_object(data)
