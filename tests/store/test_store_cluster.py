"""Unit coverage of :class:`repro.store.cluster.StoreCluster`.

Healthy and degraded reads, repair semantics (budget, auto-replace,
unrecoverable stripes), partial puts onto down nodes, and the report
counters each path feeds.
"""

import asyncio
import math

import numpy as np
import pytest

from repro.codes.registry import parse_code_spec
from repro.store.cluster import ObjectLostError, StoreCluster
from repro.store.codec import StoreError
from repro.store.node import StoreNode


def run(coro):
    return asyncio.run(coro)


def make_cluster(spec="rs(n=6,r=4,m=2)", **kwargs) -> StoreCluster:
    kwargs.setdefault("symbol_bytes", 16)
    return StoreCluster(parse_code_spec(spec), **kwargs)


def payload(size: int, seed: int = 0) -> bytes:
    return np.random.default_rng(seed).bytes(size)


# --------------------------------------------------------------------------- #
# Construction
# --------------------------------------------------------------------------- #
def test_needs_one_node_per_column():
    with pytest.raises(StoreError, match="exactly 6 nodes"):
        make_cluster(nodes=[StoreNode(j) for j in range(4)])


def test_repair_streams_must_be_positive():
    with pytest.raises(StoreError, match="repair_streams"):
        make_cluster(repair_streams=0)


def test_fractional_repair_budget_rounds_up():
    assert make_cluster(repair_streams=1.5).repair_slots == 2
    assert make_cluster(repair_streams=1.0).repair_slots == 1
    assert make_cluster().repair_slots == 6  # None = unbudgeted


# --------------------------------------------------------------------------- #
# Healthy path
# --------------------------------------------------------------------------- #
def test_put_get_round_trip_multi_stripe():
    cluster = make_cluster()
    data = payload(3 * cluster.codec.stripe_payload_bytes + 5)

    async def flow():
        await cluster.put("k", data)
        return await cluster.get("k")

    assert run(flow()) == data
    assert cluster.report.puts == 1
    assert cluster.report.gets == 1
    assert cluster.report.degraded_reads == 0
    assert cluster.fully_redundant()


def test_unknown_key_raises_keyerror():
    cluster = make_cluster()
    with pytest.raises(KeyError):
        run(cluster.get("nope"))


def test_healthy_reads_touch_only_data_columns():
    cluster = make_cluster()
    data = payload(cluster.codec.stripe_payload_bytes)

    async def flow():
        await cluster.put("k", data)
        await cluster.get("k")

    run(flow())
    for j, node in enumerate(cluster.nodes):
        expected = 1 if j in cluster.codec.data_columns else 0
        assert node.chunks_read == expected
    assert cluster.report.bytes_read_nodes_healthy == \
        len(cluster.codec.data_columns) * cluster.codec.chunk_bytes


def test_overwrite_replaces_and_shrinks():
    cluster = make_cluster()
    big = payload(2 * cluster.codec.stripe_payload_bytes, seed=1)
    small = payload(10, seed=2)

    async def flow():
        await cluster.put("k", big)
        await cluster.put("k", small)
        return await cluster.get("k")

    assert run(flow()) == small


def test_zero_byte_object_round_trips():
    cluster = make_cluster()

    async def flow():
        await cluster.put("empty", b"")
        return await cluster.get("empty")

    assert run(flow()) == b""
    assert cluster.fully_redundant()


# --------------------------------------------------------------------------- #
# Degraded reads
# --------------------------------------------------------------------------- #
def test_degraded_read_is_byte_identical_up_to_coverage():
    cluster = make_cluster()  # m = 2
    data = payload(2 * cluster.codec.stripe_payload_bytes + 3, seed=3)

    async def flow(kill):
        await cluster.put("k", data)
        for j in kill:
            cluster.crash_node(j)
        return await cluster.get("k")

    assert run(flow([0])) == data
    assert cluster.report.degraded_reads == 1
    cluster2 = make_cluster()

    async def flow2():
        await cluster2.put("k", data)
        cluster2.crash_node(0)
        cluster2.crash_node(5)
        return await cluster2.get("k")

    assert run(flow2()) == data


def test_beyond_coverage_is_object_lost():
    cluster = make_cluster("rs(n=5,r=3,m=2)")
    data = payload(cluster.codec.stripe_payload_bytes, seed=4)

    async def flow():
        await cluster.put("k", data)
        for j in (0, 1, 2):  # three losses > m = 2
            cluster.crash_node(j)
        await cluster.get("k")

    with pytest.raises(ObjectLostError):
        run(flow())
    assert cluster.report.failed_reads == 1


def test_degraded_amplification_exceeds_healthy():
    cluster = make_cluster()
    data = payload(4 * cluster.codec.stripe_payload_bytes, seed=5)

    async def flow():
        await cluster.put("k", data)
        await cluster.get("k")             # healthy
        cluster.crash_node(0)
        await cluster.get("k")             # degraded

    run(flow())
    report = cluster.report
    assert report.healthy_read_amplification >= 1.0
    assert report.degraded_read_amplification >= \
        report.healthy_read_amplification


# --------------------------------------------------------------------------- #
# Repair
# --------------------------------------------------------------------------- #
def test_repair_restores_full_redundancy():
    cluster = make_cluster()
    data = payload(3 * cluster.codec.stripe_payload_bytes, seed=6)

    async def flow():
        await cluster.put("k", data)
        cluster.crash_node(2)
        assert not cluster.fully_redundant()
        repaired = await cluster.repair_once()
        assert repaired == 3  # one per stripe
        assert cluster.fully_redundant()
        return await cluster.get("k")

    assert run(flow()) == data
    assert cluster.report.degraded_reads == 0  # repaired before the read
    assert cluster.report.repaired_stripes == 3
    assert cluster.report.repaired_chunks == 3
    assert cluster.report.repair_bytes == 3 * cluster.codec.chunk_bytes


def test_repair_without_auto_replace_waits_for_restore():
    cluster = make_cluster(auto_replace=False)
    data = payload(cluster.codec.stripe_payload_bytes, seed=7)

    async def flow():
        await cluster.put("k", data)
        cluster.crash_node(1)
        assert await cluster.repair_once() == 0  # nowhere to write
        cluster.restore_node(1)
        assert await cluster.repair_once() == 1
        return cluster.fully_redundant()

    assert run(flow())


def test_partial_put_onto_down_node_is_repaired():
    cluster = make_cluster()
    cluster.crash_node(4)
    data = payload(2 * cluster.codec.stripe_payload_bytes, seed=8)

    async def flow():
        await cluster.put("k", data)      # node 4 misses its chunks
        assert cluster.report.partial_put_stripes == 2
        got = await cluster.get("k")      # healthy or degraded per layout
        await cluster.repair_once()
        return got, await cluster.get("k")

    before, after = run(flow())
    assert before == data
    assert after == data
    assert cluster.fully_redundant()


def test_unrecoverable_stripes_are_counted_not_raised():
    cluster = make_cluster("rs(n=5,r=3,m=2)")
    data = payload(cluster.codec.stripe_payload_bytes, seed=9)

    async def flow():
        await cluster.put("k", data)
        for j in (0, 1, 2):
            cluster.crash_node(j)
        return await cluster.repair_once()

    assert run(flow()) == 0
    assert cluster.report.unrecoverable_stripes == 1


def test_repair_budget_bounds_concurrency():
    cluster = make_cluster(repair_streams=2)
    assert cluster.repair_slots == 2
    samples = []

    def hook(key, stripe):
        # The hook fires while this stripe's repair is still counted in
        # flight, so the sample is the instantaneous concurrency.
        samples.append(cluster._repairs_in_flight)

    async def flow():
        for obj in range(6):
            await cluster.put(f"k{obj}",
                              payload(cluster.codec.stripe_payload_bytes,
                                      seed=10 + obj))
        cluster.crash_node(0)
        await cluster.repair_once(on_stripe=hook)

    run(flow())
    assert len(samples) == 6
    assert all(1 <= s <= cluster.repair_slots for s in samples)
    assert cluster.fully_redundant()


def test_repair_forever_wakes_on_damage():
    cluster = make_cluster()
    data = payload(cluster.codec.stripe_payload_bytes, seed=20)

    async def flow():
        task = asyncio.create_task(cluster.repair_forever())
        await cluster.put("k", data)
        cluster.crash_node(3)
        # Yield until the background loop finishes the rebuild.
        for _ in range(200):
            await asyncio.sleep(0)
            if cluster.fully_redundant():
                break
        cluster.stop_repair()
        await task
        return cluster.fully_redundant()

    assert run(flow())
    assert cluster.report.repaired_stripes == 1


def test_interference_counter_sees_ops_during_repair():
    cluster = make_cluster()
    data = payload(4 * cluster.codec.stripe_payload_bytes, seed=21)

    async def flow():
        await cluster.put("a", data)
        await cluster.put("b", data)
        cluster.crash_node(0)
        repair = asyncio.create_task(cluster.repair_once())
        # Let the repair actually start before reading.
        for _ in range(3):
            await asyncio.sleep(0)
        await cluster.get("b")
        await repair

    run(flow())
    assert cluster.report.interfered_ops >= 1


def test_amplification_is_nan_without_traffic():
    report = make_cluster().report
    assert math.isnan(report.degraded_read_amplification)
    assert math.isnan(report.healthy_read_amplification)
