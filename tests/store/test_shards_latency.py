"""Unit tests for the sharded metadata/lock layer and latency models.

The shard map must be stable across *processes* (the subprocess
backend depends on both sides agreeing), the per-key lock tables must
reclaim entries instead of growing monotonically, and the latency
samplers must be pure functions of the seed while leaving the
deterministic digest untouched (covered end-to-end in
``test_integration.py``).
"""

import asyncio
import zlib

import numpy as np
import pytest

from repro.store import KeyShards, LatencyComponent, LatencyModel, NodeLatency
from repro.store.cluster import ObjectMeta
from repro.store.latency import node_latencies


# --------------------------------------------------------------------------- #
# KeyShards
# --------------------------------------------------------------------------- #
def test_shard_of_is_crc32_stable_across_processes():
    # hash() is salted per process; the shard map must not be.  Pin the
    # function itself so a future "optimisation" cannot silently break
    # subprocess agreement.
    shards = KeyShards(16)
    for key in ("obj-000001", "a", "κλειδί", "x" * 200):
        assert shards.shard_of(key) == \
            zlib.crc32(key.encode("utf-8")) % 16


def test_meta_round_trip_and_iteration_order():
    shards = KeyShards(4)
    keys = [f"k{i}" for i in range(40)]
    for i, key in enumerate(keys):
        shards.set_meta(key, ObjectMeta(size=i, stripes=1))
    assert len(shards) == 40
    assert all(key in shards for key in keys)
    assert shards.meta("k7").size == 7
    # items() walks shard by shard, insertion-ordered within each --
    # deterministic, and every key appears exactly once.
    seen = [key for key, _ in shards.items()]
    assert sorted(seen) == sorted(keys)
    assert len(set(seen)) == 40


def test_lock_tables_reclaim_released_entries():
    shards = KeyShards(2)

    async def flow():
        async with shards.lock("a"):
            async with shards.lock("b"):
                assert shards.live_locks == 2
        assert shards.live_locks == 0  # both reclaimed, not leaked

        # Contended: the entry must survive until the *last* holder
        # releases, then vanish.
        order = []

        async def holder(tag):
            async with shards.lock("same"):
                order.append(tag)
                await asyncio.sleep(0)

        await asyncio.gather(holder(1), holder(2), holder(3))
        assert order == [1, 2, 3]  # FIFO: the lock really serialized
        assert shards.live_locks == 0

    asyncio.run(flow())


def test_keys_spread_across_shards():
    shards = KeyShards(16)
    counts = [0] * 16
    for i in range(4096):
        counts[shards.shard_of(f"obj-{i:06d}")] += 1
    assert min(counts) > 0  # no empty shard at this population
    assert max(counts) < 4096 / 4  # and no shard owns the key space


def test_shard_count_one_still_works():
    shards = KeyShards(1)
    shards.set_meta("k", ObjectMeta(size=1, stripes=1))
    assert shards.shard_of("anything") == 0
    assert "k" in shards and len(shards) == 1


# --------------------------------------------------------------------------- #
# Latency models
# --------------------------------------------------------------------------- #
def test_component_is_base_plus_exponential_jitter():
    rng = np.random.default_rng(0)
    fixed = LatencyComponent(base_ms=3.0)
    assert fixed.sample_ms(rng) == 3.0
    jittered = LatencyComponent(base_ms=3.0, jitter_ms=2.0)
    samples = [jittered.sample_ms(rng) for _ in range(2000)]
    assert all(s >= 3.0 for s in samples)
    assert np.mean(samples) == pytest.approx(5.0, rel=0.1)


def test_from_store_section_returns_none_when_all_knobs_are_zero():
    from repro.scenario.spec import StoreSection
    assert LatencyModel.from_store_section(StoreSection()) is None
    model = LatencyModel.from_store_section(
        StoreSection(latency_disk_ms=1.5))
    assert model is not None
    assert model.network.is_zero and not model.disk.is_zero


def test_node_latency_samples_are_a_pure_function_of_the_seed():
    model = LatencyModel(network=LatencyComponent(1.0, 0.5),
                         disk=LatencyComponent(0.5, 0.25))
    a = NodeLatency(model, np.random.SeedSequence(42))
    b = NodeLatency(model, np.random.SeedSequence(42))
    assert [a.sample_s() for _ in range(100)] == \
        [b.sample_s() for _ in range(100)]


def test_node_latencies_are_independent_per_node():
    model = LatencyModel(network=LatencyComponent(1.0, 1.0))
    samplers = node_latencies(model, 4, np.random.SeedSequence(7))
    draws = [tuple(s.sample_s() for _ in range(10)) for s in samplers]
    assert len(set(draws)) == 4  # distinct streams
    # And the whole fan-out replays from the same root seed.
    replay = node_latencies(model, 4, np.random.SeedSequence(7))
    assert draws[0] == tuple(replay[0].sample_s() for _ in range(10))


def test_node_latencies_disabled_model_yields_nones():
    assert node_latencies(None, 3, np.random.SeedSequence(0)) == \
        [None, None, None]
