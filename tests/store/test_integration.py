"""End-to-end store integration under injected failures (all seeded).

The ISSUE's acceptance scenario: put a population of objects, kill
nodes mid-workload through the declarative injector, and assert that

* every get still returns byte-identical data (degraded reads),
* the repair loop restores full redundancy by the drain,
* a crash landing *during* a repair pass is itself healed,
* two runs of the same spec + seed produce identical deterministic
  digests (the replay guarantee the sweep cache relies on).
"""

import asyncio

import numpy as np
import pytest

from repro.scenario.spec import SPEC_VERSION, ScenarioSpec
from repro.store import (
    FailureInjector,
    StoreCluster,
    TrafficGenerator,
    make_payload,
    run_store,
)
from repro.codes.registry import parse_code_spec


def spec_dict(**store) -> dict:
    base = {
        "objects": 12,
        "object_bytes": 2048,
        "symbol_bytes": 64,
        "operations": 60,
        "clients": 3,
        "read_fraction": 0.8,
        "kill_nodes": 2,
        "kill_at_fraction": 0.4,
    }
    base.update(store)
    return {
        "version": SPEC_VERSION,
        "code": {"spec": "rs(n=6,r=4,m=2)"},
        "estimator": {"seed": 1234},
        "store": base,
    }


# --------------------------------------------------------------------------- #
# The flagship end-to-end scenario
# --------------------------------------------------------------------------- #
def test_kill_nodes_mid_workload_zero_data_loss():
    outcome = run_store(ScenarioSpec.from_dict(spec_dict()))
    report = outcome.report

    # Both victims crashed at the scheduled operation.
    assert report.node_crashes == 2
    assert [at for at, _, _ in report.failures] == [24, 24]
    assert all(cause == "kill" for _, _, cause in report.failures)

    # Every read that ran came back byte-identical; rs(6,4,2) tolerates
    # both losses, so nothing was beyond coverage.
    assert outcome.zero_data_loss
    assert report.failed_reads == 0
    assert report.verify_failures == 0
    assert report.degraded_reads > 0

    # The background repair loop (plus the drain) healed everything.
    assert outcome.fully_redundant
    assert report.repaired_stripes > 0

    # Afterwards the data is still there, healthy-path readable.
    async def read_all():
        cluster = outcome.cluster
        for obj in range(12):
            data = await cluster.get(TrafficGenerator.key_name(obj))
            assert len(data) == 2048
    asyncio.run(read_all())


def test_stair_code_serves_the_same_scenario():
    spec = ScenarioSpec.from_dict({
        **spec_dict(kill_nodes=1, objects=6, operations=30),
        "code": {"spec": "stair(n=6,r=4,m=1,e=(1,))"},
    })
    outcome = run_store(spec)
    assert outcome.zero_data_loss
    assert outcome.fully_redundant
    assert outcome.report.node_crashes == 1


def test_repair_disabled_leaves_the_cluster_degraded():
    spec = ScenarioSpec.from_dict(spec_dict(repair=False, kill_nodes=1))
    outcome = run_store(spec)
    # Reads still serve (degraded), but nobody healed the stripes.
    assert outcome.zero_data_loss
    assert not outcome.fully_redundant
    assert outcome.report.repaired_stripes == 0


def test_losses_beyond_coverage_are_reported_not_hidden():
    # rs(6,4,2) cannot survive 3 simultaneous losses with repair off.
    spec = ScenarioSpec.from_dict(
        spec_dict(kill_nodes=3, repair=False, read_fraction=1.0))
    outcome = run_store(spec)
    assert not outcome.zero_data_loss
    assert outcome.report.failed_reads > 0


# --------------------------------------------------------------------------- #
# Crash during repair
# --------------------------------------------------------------------------- #
def test_crash_during_repair_pass_is_healed():
    cluster = StoreCluster(parse_code_spec("rs(n=6,r=4,m=2)"),
                           symbol_bytes=32)
    rng = np.random.default_rng(99)
    originals = {}

    async def flow():
        for obj in range(8):
            key = f"k{obj}"
            originals[key] = make_payload(int(rng.integers(2 ** 62)), 1024)
            await cluster.put(key, originals[key])
        cluster.crash_node(0)

        fired = False

        def second_failure(key, stripe):
            # Fail another node in the middle of the repair pass.
            nonlocal fired
            if not fired:
                fired = True
                cluster.crash_node(3)

        await cluster.repair_once(on_stripe=second_failure)
        # The mid-pass crash re-damaged stripes; drain to quiescence
        # exactly like the runner does.
        while await cluster.repair_once():
            pass

        assert cluster.fully_redundant()
        for key, expected in originals.items():
            assert await cluster.get(key) == expected

    asyncio.run(flow())
    assert cluster.report.node_crashes == 2
    assert cluster.report.unrecoverable_stripes == 0


# --------------------------------------------------------------------------- #
# Determinism / replay
# --------------------------------------------------------------------------- #
def test_same_seed_replays_the_identical_digest():
    spec = ScenarioSpec.from_dict(spec_dict())
    first = run_store(spec)
    second = run_store(spec)
    assert first.report.deterministic_summary() == \
        second.report.deterministic_summary()
    assert first.summary()["zero_data_loss"] == \
        second.summary()["zero_data_loss"]


def test_different_seeds_pick_different_victims():
    digests = []
    for seed in (1, 2, 3, 4):
        spec = ScenarioSpec.from_dict({
            **spec_dict(), "estimator": {"seed": seed}})
        digests.append(tuple(run_store(spec).report.failures))
    assert len(set(digests)) > 1


def test_injector_schedule_is_a_pure_function_of_the_seed():
    spec = ScenarioSpec.from_dict(spec_dict()).validate()
    seq = np.random.SeedSequence(77)
    a = FailureInjector.from_spec(spec, seq)
    b = FailureInjector.from_spec(spec, np.random.SeedSequence(77))
    assert a.events == b.events
    assert a.pending == len(a.events) == 2


def test_lifetime_driven_injection_fires_under_short_mttf():
    spec = ScenarioSpec.from_dict({
        **spec_dict(kill_nodes=0, kill_at_fraction=0.5),
        "lifetime": {"mttf_hours": 50.0},
    })
    spec = spec.replace(store={"hours_per_op": 10.0})
    injector = FailureInjector.from_spec(spec, np.random.SeedSequence(5))
    assert injector.pending > 0
    assert all(e.cause == "lifetime" for e in injector.events)
    # The full run attributes every fired failure to the lifetime model.
    outcome = run_store(spec)
    assert all(cause == "lifetime"
               for _, _, cause in outcome.report.failures)


def test_domain_shock_injection_carries_the_level_tag():
    spec = ScenarioSpec.from_dict({
        **spec_dict(kill_nodes=0, kill_at_fraction=0.5),
        "domains": {"racks": 3, "rack_shock_rate_per_hour": 0.01,
                    "rack_kill_probability": 1.0},
        "lifetime": {"mttf_hours": 1e9},
    }).replace(store={"hours_per_op": 10.0})
    injector = FailureInjector.from_spec(spec, np.random.SeedSequence(11))
    assert injector.pending > 0
    assert all(e.cause.startswith("shock:rack:") for e in injector.events)


def test_kill_more_nodes_than_the_cluster_has_is_rejected():
    from repro.scenario.spec import ScenarioSpecError
    spec = ScenarioSpec.from_dict(spec_dict(kill_nodes=7))
    with pytest.raises(ScenarioSpecError, match="exceeds"):
        FailureInjector.from_spec(spec, np.random.SeedSequence(0))


# --------------------------------------------------------------------------- #
# Backend equivalence (the out-of-process tentpole guarantee)
# --------------------------------------------------------------------------- #
def _both_backends(base: dict):
    inproc = run_store(ScenarioSpec.from_dict(base))
    process = run_store(
        ScenarioSpec.from_dict(base).replace(store={"backend": "process"}))
    return inproc, process


@pytest.mark.parametrize("seed", (11, 22, 33))
@pytest.mark.parametrize("code,kill", [
    ("rs(n=6,r=4,m=2)", 2),
    ("stair(n=6,r=4,m=1,e=(1,))", 1),
])
def test_backends_produce_bit_identical_digests(code, kill, seed):
    """The acceptance criterion: for equal specs and seeds the
    in-process and subprocess backends replay the *same* deterministic
    digest -- every counter, every failure record, the damage window."""
    base = {
        **spec_dict(kill_nodes=kill, objects=8, operations=40, clients=3,
                    object_bytes=1024, symbol_bytes=32),
        "code": {"spec": code},
        "estimator": {"seed": seed},
    }
    inproc, process = _both_backends(base)
    assert inproc.report.deterministic_summary() == \
        process.report.deterministic_summary()
    # Both served correctly and physically (not just identically).
    assert inproc.zero_data_loss and process.zero_data_loss
    assert inproc.report.backend == "inprocess"
    assert process.report.backend == "process"


def test_latency_model_shapes_timing_but_not_the_digest():
    base = spec_dict(objects=8, operations=30, clients=2)
    plain = run_store(ScenarioSpec.from_dict(base))
    timed_spec = ScenarioSpec.from_dict(base).replace(store={
        "latency_net_rtt_ms": 2.0, "latency_net_jitter_ms": 0.5,
        "latency_disk_ms": 1.0, "latency_disk_jitter_ms": 0.5})
    timed = run_store(timed_spec)
    assert plain.report.deterministic_summary() == \
        timed.report.deterministic_summary()
    # But the physical clock moved: a get now costs >= one modelled RTT.
    pct = timed.report.latency_percentiles()
    assert pct["get_p50_s"] >= 3e-3
    assert plain.report.latency_percentiles()["get_p50_s"] < 3e-3


# --------------------------------------------------------------------------- #
# Injector determinism across the process boundary
# --------------------------------------------------------------------------- #
def test_injector_schedule_identical_across_backends():
    """Same spec + seed must produce the *same* crash schedule and the
    same fired-failure record no matter where the chunk bytes live."""
    base = {
        **spec_dict(kill_nodes=0, kill_at_fraction=0.5),
        "lifetime": {"mttf_hours": 50.0},
    }
    base["store"]["hours_per_op"] = 10.0
    inproc, process = _both_backends(base)
    assert inproc.injector.events == process.injector.events
    assert inproc.injector.events  # the short MTTF really fired
    assert inproc.report.failures == process.report.failures
    assert inproc.report.failures == [
        (e.at_op, e.node, e.cause) for e in inproc.injector.fired]


# --------------------------------------------------------------------------- #
# Concurrency stress: repair racing puts under a kill schedule
# --------------------------------------------------------------------------- #
async def _repair_racing_puts(backend: str, seed: int) -> dict[str, bytes]:
    """Concurrent writers overwrite a small key population while a kill
    schedule crashes nodes and repair passes race the puts.  Returns
    the final key -> bytes map (reads after global quiescence)."""
    from repro.store import ProcessTransport
    from repro.store.node import LocalTransport, StoreNode

    code = parse_code_spec("rs(n=6,r=4,m=2)")
    if backend == "process":
        transports = [await ProcessTransport.spawn() for _ in range(code.n)]
    else:
        transports = [LocalTransport() for _ in range(code.n)]
    nodes = [StoreNode(j, transport=transports[j]) for j in range(code.n)]
    async with StoreCluster(code, symbol_bytes=32, nodes=nodes) as cluster:
        keys = [f"stress-{i}" for i in range(6)]
        for i, key in enumerate(keys):
            await cluster.put(key, make_payload(seed * 1000 + i, 700))

        async def writer(wid: int) -> None:
            rng = np.random.default_rng(seed * 100 + wid)
            for _ in range(10):
                key = keys[int(rng.integers(len(keys)))]
                await cluster.put(
                    key, make_payload(int(rng.integers(2 ** 62)), 700))

        async def killer_and_repair() -> None:
            for _ in range(4):
                await asyncio.sleep(0)
            cluster.crash_node(1)
            await cluster.repair_once()
            for _ in range(4):
                await asyncio.sleep(0)
            cluster.crash_node(4)
            while await cluster.repair_once():
                pass

        await asyncio.gather(*(writer(w) for w in range(4)),
                             killer_and_repair())
        while await cluster.repair_once():
            pass
        await cluster.flush()

        assert cluster.fully_redundant()
        assert not cluster.dataplane_errors()
        assert not await cluster.audit_data_plane()
        final = {}
        for key in keys:
            final[key] = await cluster.get(key)
        return final


@pytest.mark.parametrize("seed", (5, 6))
def test_repair_racing_puts_no_torn_stripes_across_backends(seed):
    """The stress matrix: whatever interleaving of overwrites, crashes
    and repair passes played out, every read must decode to exactly one
    self-consistent payload (a torn stripe would fail verification) and
    the two backends must agree byte-for-byte on every final value."""
    from repro.store import verify_payload

    inproc = asyncio.run(_repair_racing_puts("inprocess", seed))
    process = asyncio.run(_repair_racing_puts("process", seed))
    for key, data in inproc.items():
        assert len(data) == 700
        assert verify_payload(data), f"torn payload for {key}"
    assert inproc == process
