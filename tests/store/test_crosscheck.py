"""The store-vs-event-engine cross-check (the loop-closing harness).

``repro.store.crosscheck`` replays the injector's crash schedule
through :mod:`repro.sim.events` and asserts the engine's predicted
degraded window brackets the window the live store measured.  These
tests pin the committed CI spec, the replay mechanics, and the failure
modes (a drifted measurement must be *reported*, not absorbed).
"""

import os

import pytest

from repro.scenario.spec import SPEC_VERSION, ScenarioSpec, ScenarioSpecError
from repro.store.crosscheck import crosscheck, main, replay_schedule
from repro.store.injector import FailureEvent

SPEC_PATH = os.path.join(os.path.dirname(__file__), "..", "..",
                         "examples", "store_crosscheck.toml")


def _spec(**store) -> ScenarioSpec:
    spec = ScenarioSpec.load(SPEC_PATH)
    return spec.replace(store=store) if store else spec


# --------------------------------------------------------------------------- #
# The committed CI spec
# --------------------------------------------------------------------------- #
def test_committed_spec_bracket_holds():
    result = crosscheck(_spec(), engine_seeds=(0, 1, 2))
    assert result.ok, result.failures
    # The start sides coincide by construction: both fire the schedule
    # at the same op-hour.
    assert result.predicted_start_hours == \
        pytest.approx(result.measured_start_hours)
    # The engine charges the full sampled rebuild (~repair_hours) while
    # the store's repair loop races traffic at memory speed, so the
    # predicted end must strictly dominate.
    assert result.predicted_end_hours > result.measured_end_hours
    assert result.outcome.zero_data_loss


def test_committed_spec_bracket_holds_on_the_process_backend():
    result = crosscheck(_spec(backend="process"), engine_seeds=(0,))
    assert result.ok, result.failures
    assert result.outcome.report.backend == "process"


def test_cli_exit_codes_and_json():
    assert main(["--spec", SPEC_PATH, "--engine-seeds", "2"]) == 0
    assert main(["--spec", SPEC_PATH, "--json"]) == 0
    # A spec the harness cannot cross-check is a usage error (2).
    assert main(["--spec", os.path.join(os.path.dirname(SPEC_PATH),
                                        "store_smoke.toml")]) == 2


# --------------------------------------------------------------------------- #
# Replay mechanics
# --------------------------------------------------------------------------- #
def test_replay_places_crashes_on_the_hour_axis():
    spec = _spec()
    schedule = [FailureEvent(at_op=42, node=2, cause="kill"),
                FailureEvent(at_op=42, node=3, cause="kill")]
    window = replay_schedule(spec, schedule, engine_seed=0)
    assert window.start_hours == pytest.approx(
        42 * spec.store.hours_per_op)
    assert window.loss_cause is None
    # rs(6,4,2) rebuilds from a double loss; the window closes when the
    # engine's sampled rebuild completes, well past the injection hour.
    assert window.end_hours > window.start_hours


def test_replay_reports_loss_beyond_coverage():
    spec = _spec()
    schedule = [FailureEvent(at_op=10, node=n, cause="kill")
                for n in range(3)]  # three losses exceed m=2
    window = replay_schedule(spec, schedule, engine_seed=0)
    assert window.loss_cause == "device_failures_exceed_m"
    assert window.end_hours == pytest.approx(87_600.0)  # runs to horizon


def test_replay_envelope_varies_with_the_engine_seed():
    spec = _spec()
    schedule = [FailureEvent(at_op=42, node=2, cause="kill")]
    ends = {replay_schedule(spec, schedule, engine_seed=s).end_hours
            for s in range(5)}
    assert len(ends) > 1  # sampled rebuild durations differ ...
    result = crosscheck(spec, engine_seeds=range(5))
    # ... and the prediction envelopes the worst of them.
    assert result.predicted_end_hours == pytest.approx(max(
        replay_schedule(spec, list(result.schedule), engine_seed=s).end_hours
        for s in range(5)))


# --------------------------------------------------------------------------- #
# Guard rails
# --------------------------------------------------------------------------- #
def test_spec_without_hours_per_op_is_rejected():
    with pytest.raises(ScenarioSpecError, match="hours_per_op"):
        crosscheck(_spec(hours_per_op=0.0))


def test_spec_without_any_crash_schedule_is_rejected():
    with pytest.raises(ScenarioSpecError, match="at least one crash"):
        crosscheck(_spec(kill_nodes=0, kill_at_fraction=0.5))


def test_a_drifted_measurement_is_reported_not_absorbed():
    """A measured window escaping the envelope must flag each violated
    edge -- that report is the whole point of the harness."""
    from repro.store.crosscheck import bracket_failures

    assert bracket_failures(1.0, 2.0, 1.0, 40.0, 2) == []
    both = bracket_failures(0.5, 50.0, 1.0, 40.0, 2)
    assert len(both) == 2
    assert "after the measured start" in both[0]
    assert "after the predicted end" in both[1]
    assert bracket_failures(None, None, 1.0, 40.0, 2) == [
        "the live store measured no damage window although the "
        "injector scheduled 2 crash(es)"]
    assert bracket_failures(1.0, 2.0, None, None, 2)[0].startswith(
        "the engine predicted no damage window")
    # Equal edges (the by-construction start case) are inside brackets.
    assert bracket_failures(1.0, 40.0, 1.0, 40.0, 1) == []
