"""Property-fuzz the chunk-RPC wire protocol (frames, client, server).

The invariant under attack: a reader either delivers a *whole* frame
or raises :class:`RpcProtocolError` -- truncated prefixes, mid-body
EOF, oversized length prefixes and random byte corruption must all
surface as clean errors, never as hangs or torn chunks.  Every fuzz
loop is seeded (``np.random.default_rng``), so failures replay.
"""

import asyncio
import socket

import numpy as np
import pytest

from repro.store import rpc
from repro.store.node import ProcessTransport
from repro.store.rpc import (
    ChunkServer,
    NodeProcessError,
    Request,
    RpcClient,
    RpcProtocolError,
    decode_request,
    decode_response,
    decode_stat,
    encode_frame,
    encode_response,
    encode_stat,
    read_frame,
    serve,
)

#: Every test below must finish well inside this; a hang is a failure.
TIMEOUT_S = 10.0


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, TIMEOUT_S))


def fed_reader(*chunks: bytes, eof: bool = True) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    for chunk in chunks:
        reader.feed_data(chunk)
    if eof:
        reader.feed_eof()
    return reader


async def stream_pair():
    """Two connected (reader, writer) pairs over a local socketpair."""
    left, right = socket.socketpair()
    a = await asyncio.open_connection(sock=left)
    b = await asyncio.open_connection(sock=right)
    return a, b


# --------------------------------------------------------------------------- #
# Frame codec
# --------------------------------------------------------------------------- #
def test_frame_round_trip():
    async def flow():
        body = b"\x01\x00\x03abc\x00\x00\x00\x07payload"
        reader = fed_reader(encode_frame(body))
        assert await read_frame(reader) == body
        assert await read_frame(reader) is None  # clean EOF after

    run(flow())


def test_clean_eof_at_frame_boundary_is_none():
    async def flow():
        assert await read_frame(fed_reader()) is None

    run(flow())


def test_truncated_length_prefix_raises():
    async def flow():
        with pytest.raises(RpcProtocolError, match="mid-prefix"):
            await read_frame(fed_reader(b"\x00\x00"))

    run(flow())


def test_zero_length_frame_raises():
    async def flow():
        with pytest.raises(RpcProtocolError, match="zero-length"):
            await read_frame(fed_reader(b"\x00\x00\x00\x00"))

    run(flow())


def test_oversized_length_prefix_rejected_before_the_body():
    async def flow():
        # The prefix claims 2 GiB; only the 4 prefix bytes are fed, so
        # the rejection must come from the prefix check, not a read of
        # data that will never arrive.
        huge = (2 ** 31).to_bytes(4, "big")
        with pytest.raises(RpcProtocolError, match="exceeds"):
            await read_frame(fed_reader(huge, eof=False), max_frame=1024)

    run(flow())


def test_peer_death_mid_body_raises_not_hangs():
    async def flow():
        frame = encode_frame(b"x" * 100)
        with pytest.raises(RpcProtocolError, match="mid-frame"):
            await read_frame(fed_reader(frame[:40]))

    run(flow())


def test_sending_an_empty_frame_is_refused():
    with pytest.raises(RpcProtocolError, match="empty"):
        encode_frame(b"")


def test_oversized_body_is_refused_at_encode_time(monkeypatch):
    monkeypatch.setattr(rpc, "MAX_FRAME_BYTES", 64)
    with pytest.raises(RpcProtocolError, match="ceiling"):
        encode_frame(b"y" * 65)


# --------------------------------------------------------------------------- #
# Request / response codec properties (seeded fuzz)
# --------------------------------------------------------------------------- #
def test_request_encode_decode_round_trips_fuzzed():
    rng = np.random.default_rng(2024)
    ops = (rpc.OP_PUT, rpc.OP_GET, rpc.OP_DELETE, rpc.OP_CRASH,
           rpc.OP_RESTORE, rpc.OP_STAT, rpc.OP_SHUTDOWN)
    for _ in range(200):
        op = ops[rng.integers(len(ops))]
        key = "".join(chr(c) for c in
                      rng.integers(32, 0x2FFF, size=rng.integers(0, 40)))
        stripe = int(rng.integers(0, 2 ** 32))
        payload = rng.bytes(int(rng.integers(0, 512)))
        body = Request(op, key, stripe, payload).encode(payload)
        assert decode_request(body) == (op, key, stripe, payload)


def test_corrupted_request_bodies_error_cleanly_fuzzed():
    """Random single-byte mutations and truncations of valid request
    bodies either decode to *some* request or raise RpcProtocolError --
    no other exception type, and (checked by decode being pure) no torn
    half-parse."""
    rng = np.random.default_rng(7)
    for _ in range(300):
        payload = rng.bytes(int(rng.integers(0, 64)))
        body = bytearray(Request(rpc.OP_PUT, "key-αβ", 3,
                                 payload).encode(payload))
        if rng.random() < 0.5 and len(body) > 1:
            body = body[:rng.integers(1, len(body))]  # truncate
        else:
            body[rng.integers(len(body))] = rng.integers(256)  # mutate
        try:
            op, key, stripe, decoded = decode_request(bytes(body))
        except RpcProtocolError:
            continue
        assert op in (rpc.OP_PUT, rpc.OP_GET, rpc.OP_DELETE, rpc.OP_CRASH,
                      rpc.OP_RESTORE, rpc.OP_STAT, rpc.OP_SHUTDOWN)
        assert isinstance(key, str) and isinstance(decoded, bytes)


def test_unknown_opcode_and_undecodable_key_are_rejected():
    with pytest.raises(RpcProtocolError, match="unknown opcode"):
        decode_request(bytes([99]) + b"\x00\x00" + b"\x00" * 4)
    with pytest.raises(RpcProtocolError, match="undecodable key"):
        decode_request(bytes([rpc.OP_GET]) + b"\x00\x02\xff\xfe"
                       + b"\x00" * 4)
    with pytest.raises(RpcProtocolError, match="truncated"):
        decode_request(bytes([rpc.OP_GET]) + b"\x00")
    with pytest.raises(RpcProtocolError, match="too short"):
        decode_request(bytes([rpc.OP_GET]) + b"\xff\xff" + b"k")


def test_response_and_stat_codecs():
    assert decode_response(encode_response(rpc.STATUS_OK, b"d")) \
        == (rpc.STATUS_OK, b"d")
    with pytest.raises(RpcProtocolError, match="unknown response"):
        decode_response(b"\x09")
    with pytest.raises(RpcProtocolError, match="empty response"):
        decode_response(b"")
    assert decode_stat(encode_stat(12, 3456)) == (12, 3456)
    with pytest.raises(RpcProtocolError, match="16 bytes"):
        decode_stat(b"\x00" * 7)


def test_oversized_key_is_refused():
    request = Request(rpc.OP_PUT, "k" * 70_000, 0, b"")
    with pytest.raises(RpcProtocolError, match="65535"):
        request.encode(b"")


# --------------------------------------------------------------------------- #
# The server under fuzzed byte streams
# --------------------------------------------------------------------------- #
def test_server_survives_fuzzed_garbage_without_hanging():
    """Feed the server random garbage streams: it must terminate (error
    reply or EOF) within the timeout and every reply it does send must
    itself be a well-formed frame."""
    rng = np.random.default_rng(31)

    async def one_round(garbage: bytes) -> None:
        (client_r, client_w), (server_r, server_w) = await stream_pair()
        task = asyncio.create_task(serve(server_r, server_w,
                                         max_frame=4096))
        client_w.write(garbage)
        client_w.write_eof()
        await task             # the server must terminate on its own
        server_w.write_eof()   # then replies end in a clean EOF
        while True:  # every reply frame must decode cleanly
            try:
                body = await read_frame(client_r, 4096)
            except RpcProtocolError:
                pytest.fail("server sent a torn frame")
            if body is None:
                break
            decode_response(body)
        client_w.close()
        server_w.close()

    async def flow():
        for _ in range(25):
            await one_round(rng.bytes(int(rng.integers(1, 200))))

    run(flow())


def test_server_stops_after_a_framing_error_with_an_err_reply():
    async def flow():
        (client_r, client_w), (server_r, server_w) = await stream_pair()
        task = asyncio.create_task(serve(server_r, server_w))
        # A valid put, then a frame that dies mid-body.
        put = Request(rpc.OP_PUT, "k", 0, b"data")
        client_w.write(encode_frame(put.encode(b"data")))
        client_w.write(encode_frame(b"x" * 50)[:20])
        client_w.write_eof()
        await task             # framing error stops the server
        server_w.write_eof()
        assert decode_response(await read_frame(client_r)) \
            == (rpc.STATUS_OK, b"")
        status, message = decode_response(await read_frame(client_r))
        assert status == rpc.STATUS_ERR
        assert b"mid-frame" in message
        assert await read_frame(client_r) is None  # server hung up
        client_w.close()
        server_w.close()

    run(flow())


# --------------------------------------------------------------------------- #
# ChunkServer semantics
# --------------------------------------------------------------------------- #
def test_chunk_server_put_get_delete_crash_restore():
    server = ChunkServer()

    def call(op, key="", stripe=0, payload=b""):
        body, keep = server.handle(op, key, stripe, payload)
        return decode_response(body), keep

    assert call(rpc.OP_PUT, "k", 0, b"alpha")[0] == (rpc.STATUS_OK, b"")
    assert call(rpc.OP_GET, "k", 0)[0] == (rpc.STATUS_OK, b"alpha")
    assert call(rpc.OP_GET, "k", 1)[0] == (rpc.STATUS_MISSING, b"")
    assert call(rpc.OP_STAT)[0] == (rpc.STATUS_OK, encode_stat(1, 5))

    # Crash loses all bytes and marks the slot down ...
    assert call(rpc.OP_CRASH)[0] == (rpc.STATUS_OK, b"")
    status, message = call(rpc.OP_PUT, "k", 0, b"beta")[0]
    assert status == rpc.STATUS_ERR and b"mirror desync" in message
    status, message = call(rpc.OP_GET, "k", 0)[0]
    assert status == rpc.STATUS_ERR

    # ... and restore brings an *empty* replacement back up.
    assert call(rpc.OP_RESTORE)[0] == (rpc.STATUS_OK, b"")
    assert call(rpc.OP_GET, "k", 0)[0] == (rpc.STATUS_MISSING, b"")

    assert call(rpc.OP_PUT, "k", 0, b"beta")[0] == (rpc.STATUS_OK, b"")
    assert call(rpc.OP_PUT, "k", 1, b"gamma")[0] == (rpc.STATUS_OK, b"")
    (status, deleted), _ = call(rpc.OP_DELETE, "k")
    assert status == rpc.STATUS_OK
    assert int.from_bytes(deleted, "big") == 2

    response, keep = call(rpc.OP_SHUTDOWN)
    assert response == (rpc.STATUS_OK, b"") and keep is False


# --------------------------------------------------------------------------- #
# The pipelined client
# --------------------------------------------------------------------------- #
def test_client_pipelines_and_matches_responses_fifo():
    async def flow():
        (client_r, client_w), (server_r, server_w) = await stream_pair()
        task = asyncio.create_task(serve(server_r, server_w))
        client = RpcClient(client_r, client_w)
        puts = [client.call(Request(rpc.OP_PUT, f"k{i}", i,
                                    bytes([i]) * 8))
                for i in range(32)]
        gets = [client.call(Request(rpc.OP_GET, f"k{i}", i))
                for i in range(32)]
        for put in puts:
            assert await put == (rpc.STATUS_OK, b"")
        for i, get in enumerate(gets):
            assert await get == (rpc.STATUS_OK, bytes([i]) * 8)
        await client.aclose()
        server_w.close()
        await task

    run(flow())


def test_deferred_payload_future_preserves_frame_order():
    """A put whose bytes do not exist yet must still hold its place in
    the outbox: the following get (enqueued later) sees the bytes."""
    async def flow():
        (client_r, client_w), (server_r, server_w) = await stream_pair()
        task = asyncio.create_task(serve(server_r, server_w))
        client = RpcClient(client_r, client_w)
        pending = asyncio.get_running_loop().create_future()
        put = client.call(Request(rpc.OP_PUT, "late", 0, pending))
        get = client.call(Request(rpc.OP_GET, "late", 0))
        await asyncio.sleep(0.01)  # let the write loop block on it
        pending.set_result(b"finally")
        assert await put == (rpc.STATUS_OK, b"")
        assert await get == (rpc.STATUS_OK, b"finally")
        await client.aclose()
        server_w.close()
        await task

    run(flow())


def test_peer_death_fails_every_outstanding_call():
    async def flow():
        (client_r, client_w), (server_r, server_w) = await stream_pair()
        client = RpcClient(client_r, client_w)
        first = client.call(Request(rpc.OP_GET, "k", 0))
        # Read the request but die mid-response-frame.
        await read_frame(server_r)
        server_w.write(encode_frame(encode_response(rpc.STATUS_OK))[:3])
        server_w.close()
        with pytest.raises(NodeProcessError):
            await first
        # Once dead, later calls fail immediately instead of queueing.
        with pytest.raises(NodeProcessError):
            await client.call(Request(rpc.OP_GET, "k", 0))
        await client.aclose()
        client_w.close()

    run(flow())


def test_unsolicited_response_is_a_protocol_error():
    async def flow():
        (client_r, client_w), (server_r, server_w) = await stream_pair()
        client = RpcClient(client_r, client_w)
        server_w.write(encode_frame(encode_response(rpc.STATUS_OK)))
        await server_w.drain()
        await asyncio.sleep(0.05)
        # The client marked itself dead; new calls fail fast.
        with pytest.raises(NodeProcessError):
            await client.call(Request(rpc.OP_GET, "k", 0))
        await client.aclose()
        server_w.close()
        client_w.close()

    run(flow())


# --------------------------------------------------------------------------- #
# Against the real subprocess
# --------------------------------------------------------------------------- #
def test_real_subprocess_round_trip_and_kill_mid_flight():
    async def flow():
        transport = await ProcessTransport.spawn()
        try:
            await transport.put("k", 0, b"x" * 64, None)
            assert await transport.fetch("k", 0, None) == b"x" * 64
            assert await transport.stat() == (1, 64)
            # Kill the subprocess with a request in flight: the call
            # errors cleanly instead of hanging.
            pending = transport.fetch("k", 0, None)
            transport.process.kill()
            with pytest.raises((NodeProcessError, ChunkError)):
                await pending
        finally:
            await transport.aclose()

    from repro.store.node import ChunkIntegrityError as ChunkError
    run(flow())


def test_real_subprocess_rejects_oversized_frames():
    from repro.store.node import ChunkIntegrityError

    async def flow():
        transport = await ProcessTransport.spawn(max_frame=1024)
        try:
            # The server refuses the frame *before* reading its body and
            # answers ERR; the client surfaces that as a clean integrity
            # failure, never a hang or a torn write.
            with pytest.raises(ChunkIntegrityError, match="ceiling"):
                await transport.put("k", 0, b"z" * 2048, None)
        finally:
            await transport.aclose()

    run(flow())
