"""No lingering tasks survive a store run -- asserted with ``-W error``.

A crash cancels in-flight deliveries and a cluster shutdown reaps node
subprocesses; sloppy teardown surfaces as asyncio's end-of-loop
stderr complaints ("Task was destroyed but it is pending!", "Future
exception was never retrieved") or, under ``-W error``, as a raised
warning.  These tests run real workloads -- both backends, kills,
repair -- in a ``python -W error`` subprocess and require a clean exit
with silent stderr.
"""

import os
import subprocess
import sys

import pytest

_WORKLOAD = """
import asyncio
from repro.scenario.spec import SPEC_VERSION, ScenarioSpec
from repro.store import run_store

spec = ScenarioSpec.from_dict({
    "version": SPEC_VERSION,
    "code": {"spec": "rs(n=6,r=4,m=2)"},
    "estimator": {"seed": 321},
    "store": {"objects": 8, "object_bytes": 1024, "symbol_bytes": 32,
              "operations": 40, "clients": 3, "kill_nodes": 2,
              "kill_at_fraction": 0.4, "backend": "%(backend)s"},
})
outcome = run_store(spec)
assert outcome.zero_data_loss and outcome.fully_redundant
print("digest", hash(str(outcome.report.deterministic_summary())))
"""

#: The end-of-loop complaints asyncio prints for leaked tasks/futures;
#: they bypass the warnings machinery, so stderr is checked explicitly.
_LEAK_MARKERS = (
    "Task was destroyed but it is pending",
    "Future exception was never retrieved",
    "Task exception was never retrieved",
    "Event loop is closed",
)


def _run_with_error_warnings(code: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
        env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-W", "error", "-c", code],
        capture_output=True, text=True, timeout=120, env=env)


@pytest.mark.parametrize("backend", ("inprocess", "process"))
def test_store_run_leaves_no_pending_tasks(backend):
    result = _run_with_error_warnings(_WORKLOAD % {"backend": backend})
    assert result.returncode == 0, \
        f"run failed under -W error:\n{result.stderr}"
    for marker in _LEAK_MARKERS:
        assert marker not in result.stderr, \
            f"lingering-task leak ({marker!r}):\n{result.stderr}"
    assert result.stderr.strip() == "", \
        f"unexpected stderr noise:\n{result.stderr}"


def test_mid_repair_crash_teardown_is_clean():
    """Crash a node while its repair decode is in flight, then tear the
    cluster down immediately -- the historical 'Task was destroyed'
    path."""
    code = """
import asyncio
from repro.codes.registry import parse_code_spec
from repro.store import StoreCluster, make_payload

async def flow():
    async with StoreCluster(parse_code_spec("rs(n=6,r=4,m=2)"),
                            symbol_bytes=32) as cluster:
        for i in range(6):
            await cluster.put(f"k{i}", make_payload(i, 900))
        cluster.crash_node(0)
        repair = asyncio.create_task(cluster.repair_once())
        await asyncio.sleep(0)   # let repair decide, not finish
        cluster.crash_node(2)    # re-damage mid-pass
        await repair
        # aclose() (via the context manager) must reap everything.

asyncio.run(flow())
print("ok")
"""
    result = _run_with_error_warnings(code)
    assert result.returncode == 0, result.stderr
    for marker in _LEAK_MARKERS:
        assert marker not in result.stderr, result.stderr
    assert result.stderr.strip() == ""
