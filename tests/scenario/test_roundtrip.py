"""--dump-spec round trips: flags -> spec -> file -> identical run.

The refactor's acceptance criterion: the CLI is a thin adapter, so a
dumped spec must rebuild the *exact* engine inputs of the flag run it
came from (same canonical dict, same content hash), and running through
``--spec`` must print byte-identical tables.
"""

import pytest

from repro.scenario.spec import ScenarioSpec, spec_hash
from repro.sim.cli import build_parser, main, spec_from_args

INVOCATIONS = {
    "m1-default": ["--seed", "0", "--trials", "100"],
    "m2-direct": ["--code", "sd(n=8,r=16,m=2,s=2)", "--trials", "150",
                  "--seed", "0", "--mttf", "20000",
                  "--repair-hours", "200"],
    "domains": ["--trials", "200", "--seed", "0", "--mttf", "20000",
                "--racks", "8", "--rack-shock-rate", "1e-4",
                "--batch-fraction", "0.5", "--batch-accel", "4"],
    "trace": ["--trace", "examples/sample_trace.csv", "--trials", "200",
              "--seed", "0", "--trace-bins", "6"],
    "rare": ["--code", "sd(n=8,r=16,m=2,s=2)", "--rare-event",
             "--seed", "0", "--rare-target-rel-se", "0.05"],
    "events-replay": ["--mode", "events", "--trace",
                      "examples/sample_trace.csv", "--trace-replay",
                      "--trials", "5", "--seed", "0", "--stripes", "32",
                      "--horizon", "3000"],
}


@pytest.mark.parametrize("argv", INVOCATIONS.values(),
                         ids=INVOCATIONS.keys())
def test_dumped_spec_rebuilds_identical_engine_inputs(argv):
    args = build_parser().parse_args(argv)
    spec = spec_from_args(args).validate()
    reloaded = ScenarioSpec.loads(spec.dumps_toml())
    assert reloaded == spec
    assert reloaded.canonical_dict() == spec.canonical_dict()
    assert spec_hash(reloaded) == spec_hash(spec)


@pytest.mark.parametrize("name", ["m1-default", "domains", "trace",
                                  "events-replay", "rare"])
def test_spec_run_prints_the_same_table_as_the_flag_run(name, tmp_path,
                                                        capsys):
    argv = INVOCATIONS[name]
    assert main(argv) == 0
    flag_out = capsys.readouterr().out
    assert main(argv + ["--dump-spec"]) == 0
    dumped = capsys.readouterr().out
    path = tmp_path / "scenario.toml"
    path.write_text(dumped)
    assert main(["--spec", str(path)]) == 0
    assert capsys.readouterr().out == flag_out


def test_explicit_flags_override_the_loaded_spec(tmp_path, capsys):
    assert main(["--seed", "0", "--trials", "100", "--dump-spec"]) == 0
    path = tmp_path / "scenario.toml"
    path.write_text(capsys.readouterr().out)
    # Overriding --trials on top of the spec must equal the pure flag
    # run with that trial count (everything else from the spec).
    assert main(["--seed", "0", "--trials", "60"]) == 0
    reference = capsys.readouterr().out
    assert main(["--spec", str(path), "--trials", "60"]) == 0
    assert capsys.readouterr().out == reference


def test_dump_spec_of_a_loaded_spec_is_a_fixed_point(tmp_path, capsys):
    assert main(["--trace", "examples/sample_trace.csv", "--trials", "50",
                 "--seed", "2", "--dump-spec"]) == 0
    first = capsys.readouterr().out
    path = tmp_path / "scenario.toml"
    path.write_text(first)
    assert main(["--spec", str(path), "--dump-spec"]) == 0
    assert capsys.readouterr().out == first


def test_bad_spec_file_is_a_clean_cli_error(tmp_path):
    path = tmp_path / "bad.toml"
    path.write_text("version = 1\n[code]\nspec = \"rs(n=8,r=16,m=1)\"\n"
                    "[tuning]\nx = 1\n")
    with pytest.raises(SystemExit, match="unknown section"):
        main(["--spec", str(path)])
