"""Sweep expansion, deterministic seeds, and the content-addressed cache."""

import json

import pytest

from repro.scenario.spec import ScenarioSpec, ScenarioSpecError, spec_hash
from repro.scenario.sweep import (
    cache_lookup,
    cache_store,
    expand_cells,
    load_sweep,
    main,
    run_sweep,
    run_sweep_file,
)

SWEEP_TOML = """\
[scenario]
version = 1
[scenario.code]
spec = "rs(n=8,r=16,m=1)"
[scenario.lifetime]
mttf_hours = 2000.0
[scenario.estimator]
trials = 30
seed = 0

[sweep]
name = "test-sweep"
[sweep.grid]
"lifetime.mttf_hours" = [1000.0, 2000.0]
"estimator.trials" = [20, 30, 40]
"""


def _sweep_file(tmp_path, text=SWEEP_TOML):
    path = tmp_path / "sweep.toml"
    path.write_text(text)
    return path


def test_grid_expands_in_file_order_first_key_slowest(tmp_path):
    sweep = load_sweep(_sweep_file(tmp_path))
    cells = expand_cells(sweep)
    assert len(cells) == 6
    assert [c[1]["lifetime.mttf_hours"] for c in cells] == \
        [1000.0, 1000.0, 1000.0, 2000.0, 2000.0, 2000.0]
    assert [c[1]["estimator.trials"] for c in cells] == [20, 30, 40] * 2


def test_cell_seeds_are_derived_distinct_and_deterministic(tmp_path):
    sweep = load_sweep(_sweep_file(tmp_path))
    seeds = [spec.estimator.seed for spec, _ in expand_cells(sweep)]
    assert len(set(seeds)) == len(seeds)       # statistically independent
    again = [spec.estimator.seed for spec, _ in expand_cells(sweep)]
    assert seeds == again                      # reproducible from one seed
    # A different base seed derives a different family.
    other = load_sweep(_sweep_file(
        tmp_path, SWEEP_TOML.replace("seed = 0", "seed = 1")))
    assert [s.estimator.seed for s, _ in expand_cells(other)] != seeds


def test_cell_pinning_estimator_seed_keeps_it(tmp_path):
    text = SWEEP_TOML + "\n[[sweep.cells]]\n\"estimator.seed\" = 7\n"
    cells = expand_cells(load_sweep(_sweep_file(tmp_path, text)))
    assert cells[-1][0].estimator.seed == 7


def test_plain_spec_file_is_a_one_cell_sweep(tmp_path):
    path = tmp_path / "single.toml"
    spec = ScenarioSpec.from_dict(
        {"version": 1, "code": {"spec": "rs(n=8,r=16,m=1)"},
         "lifetime": {"mttf_hours": 1000.0},
         "estimator": {"trials": 10, "seed": 0}})
    spec.dump(path)
    result = run_sweep_file(path)
    assert len(result.cells) == 1
    assert result.cells[0].result["engine"] == "montecarlo"


def test_invalid_cell_fails_the_sweep_with_its_index(tmp_path):
    text = SWEEP_TOML + "\n[[sweep.cells]]\n\"estimator.trials\" = 0\n"
    with pytest.raises(ScenarioSpecError, match="sweep cell 6"):
        run_sweep(load_sweep(_sweep_file(tmp_path, text)))


def test_non_dotted_override_is_rejected(tmp_path):
    text = SWEEP_TOML.replace('"estimator.trials"', '"trials"')
    with pytest.raises(ScenarioSpecError, match="dotted"):
        load_sweep(_sweep_file(tmp_path, text))


# --------------------------------------------------------------------------- #
# The content-addressed cache
# --------------------------------------------------------------------------- #
def test_second_run_is_all_hits_and_bitwise_identical(tmp_path):
    sweep = load_sweep(_sweep_file(tmp_path))
    cache = tmp_path / "cache"
    first = run_sweep(sweep, cache_dir=cache)
    assert (first.hits, first.misses) == (0, 6)
    second = run_sweep(sweep, cache_dir=cache)
    assert (second.hits, second.misses) == (6, 0)
    # Bitwise-identical cached results, zero recomputation.
    assert (json.dumps([c.result for c in second.cells], sort_keys=True)
            == json.dumps([c.result for c in first.cells], sort_keys=True))


def test_corrupted_and_stale_cache_entries_recompute(tmp_path):
    sweep = load_sweep(_sweep_file(tmp_path))
    cache = tmp_path / "cache"
    first = run_sweep(sweep, cache_dir=cache)
    keys = [cell.key for cell in first.cells]
    # Corrupt one entry outright, poison another with a wrong salt, and
    # a third with a result recorded for a *different* spec.
    (cache / f"{keys[0]}.json").write_text("{ not json")
    entry = json.loads((cache / f"{keys[1]}.json").read_text())
    entry["salt"] = "repro-sim/engines-v0"
    (cache / f"{keys[1]}.json").write_text(json.dumps(entry))
    entry2 = json.loads((cache / f"{keys[2]}.json").read_text())
    entry2["spec"]["estimator"]["trials"] = 999_999
    (cache / f"{keys[2]}.json").write_text(json.dumps(entry2))

    again = run_sweep(sweep, cache_dir=cache)
    assert (again.hits, again.misses) == (3, 3)
    # The recomputed results match the originals (determinism) and the
    # poisoned entries were overwritten with trustworthy ones.
    assert [c.result for c in again.cells] == [c.result
                                               for c in first.cells]
    final = run_sweep(sweep, cache_dir=cache)
    assert (final.hits, final.misses) == (6, 0)


def test_cache_is_content_addressed_per_spec(tmp_path):
    spec = ScenarioSpec.from_dict(
        {"version": 1, "code": {"spec": "rs(n=8,r=16,m=1)"},
         "estimator": {"trials": 5, "seed": 0}})
    cache = tmp_path / "cache"
    cache_store(cache, spec, {"x": 1})
    assert cache_lookup(cache, spec) == {"x": 1}
    other = spec.replace(estimator={"seed": 1})
    assert cache_lookup(cache, other) is None
    assert spec_hash(other) != spec_hash(spec)


def test_parallel_sweep_matches_serial(tmp_path):
    sweep = load_sweep(_sweep_file(tmp_path))
    serial = run_sweep(sweep, processes=1)
    parallel = run_sweep(sweep, processes=4)
    assert [c.result for c in parallel.cells] == [c.result
                                                  for c in serial.cells]


def test_cli_expect_all_hits_gates_on_cache_misses(tmp_path, capsys):
    path = _sweep_file(tmp_path)
    cache = str(tmp_path / "cache")
    with pytest.raises(SystemExit, match="recomputed"):
        main([str(path), "--cache-dir", cache, "--expect-all-hits"])
    capsys.readouterr()
    assert main([str(path), "--cache-dir", cache,
                 "--expect-all-hits"]) == 0
    out = capsys.readouterr().out
    assert "6 cached / 6 cells" in out
