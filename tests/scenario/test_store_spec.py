"""Strict parsing and validation of the ``[store]`` scenario section.

Mirrors ``test_spec.py``'s discipline for the store extension: unknown
keys and wrong types fail loudly, round trips are lossless, and
contradictory section combinations are rejected at validate time.
"""

import pytest

from repro.scenario.spec import (
    SPEC_VERSION,
    ScenarioSpec,
    ScenarioSpecError,
    StoreSection,
    spec_hash,
)

MINIMAL = {"version": SPEC_VERSION, "code": {"spec": "rs(n=6,r=4,m=2)"}}


def with_store(**store) -> dict:
    return {**MINIMAL, "store": store}


# --------------------------------------------------------------------------- #
# Parsing strictness
# --------------------------------------------------------------------------- #
def test_store_defaults_are_a_runnable_workload():
    spec = ScenarioSpec.from_dict(with_store())
    assert spec.store == StoreSection()
    assert spec.store.objects == 64
    assert spec.store.repair is True
    assert spec.store.kill_nodes == 0
    spec.validate()


def test_spec_without_store_has_none():
    spec = ScenarioSpec.from_dict(MINIMAL)
    assert spec.store is None


def test_unknown_store_key_is_rejected_with_the_known_keys():
    with pytest.raises(ScenarioSpecError, match="known keys"):
        ScenarioSpec.from_dict(with_store(object_count=5))


def test_wrong_types_are_rejected():
    with pytest.raises(ScenarioSpecError, match=r"\[store\] objects"):
        ScenarioSpec.from_dict(with_store(objects="many"))
    with pytest.raises(ScenarioSpecError, match="bool"):
        ScenarioSpec.from_dict(with_store(objects=True))
    with pytest.raises(ScenarioSpecError, match="bool"):
        ScenarioSpec.from_dict(with_store(repair=1))


def test_repair_accepts_real_booleans():
    spec = ScenarioSpec.from_dict(with_store(repair=False))
    assert spec.store.repair is False


# --------------------------------------------------------------------------- #
# Round trips and hashing
# --------------------------------------------------------------------------- #
def _rich_store_spec() -> ScenarioSpec:
    return ScenarioSpec.from_dict({
        **MINIMAL,
        "repair": {"rebuild_streams": 1.5},
        "estimator": {"seed": 42},
        "store": {
            "objects": 10, "object_bytes": 4096, "min_object_bytes": 0,
            "symbol_bytes": 128, "operations": 100, "clients": 2,
            "read_fraction": 0.75, "zipf_alpha": 0.9, "repair": False,
            "kill_nodes": 2, "kill_at_fraction": 0.25,
            "hours_per_op": 1.0,
        },
    })


def test_toml_round_trip_is_lossless():
    spec = _rich_store_spec()
    again = ScenarioSpec.loads(spec.dumps_toml())
    assert again == spec
    assert again.store.repair is False
    assert again.store.min_object_bytes == 0


def test_json_round_trip_is_lossless():
    spec = _rich_store_spec()
    assert ScenarioSpec.loads(spec.dumps_json(), format="json") == spec


def test_dump_load_file_round_trip(tmp_path):
    spec = _rich_store_spec()
    path = tmp_path / "store.toml"
    spec.dump(path)
    assert ScenarioSpec.load(path) == spec


def test_canonical_dict_is_explicit_about_the_absent_store():
    spec = ScenarioSpec.from_dict(MINIMAL)
    assert "store" not in spec.to_dict()
    assert spec.canonical_dict()["store"] is None


def test_store_section_changes_the_spec_hash():
    bare = ScenarioSpec.from_dict(MINIMAL)
    stored = ScenarioSpec.from_dict(with_store())
    assert spec_hash(bare) != spec_hash(stored)
    tweaked = stored.replace(store={"operations": 512})
    assert spec_hash(tweaked) != spec_hash(stored)


def test_replace_merges_store_keys():
    spec = ScenarioSpec.from_dict(with_store(objects=8))
    bumped = spec.replace(store={"operations": 99})
    assert bumped.store.objects == 8
    assert bumped.store.operations == 99


# --------------------------------------------------------------------------- #
# Contradictory combinations
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("updates,match", [
    ({"estimator": {"mode": "analytic"}}, "no closed form"),
    ({"estimator": {"mode": "rare"}}, "MTTDL"),
    ({"store": {"objects": 0}}, "objects"),
    ({"store": {"object_bytes": -1}}, "object_bytes"),
    ({"store": {"min_object_bytes": 5000}}, "min_object_bytes"),
    ({"store": {"symbol_bytes": 0}}, "symbol_bytes"),
    ({"store": {"operations": 0}}, "operations"),
    ({"store": {"clients": 0}}, "clients"),
    ({"store": {"read_fraction": 1.5}}, "read_fraction"),
    ({"store": {"zipf_alpha": -0.1}}, "zipf_alpha"),
    ({"store": {"kill_nodes": -1}}, "kill_nodes"),
    ({"store": {"kill_at_fraction": 1.0, "kill_nodes": 1}},
     "kill_at_fraction"),
    ({"store": {"kill_at_fraction": 0.2}}, "no effect"),
    ({"store": {"hours_per_op": -1.0}}, "hours_per_op"),
])
def test_contradictory_store_specs_are_rejected(updates, match):
    base = ScenarioSpec.from_dict(
        with_store(objects=4, object_bytes=4096))
    spec = base.replace(**updates)
    with pytest.raises(ScenarioSpecError, match=match):
        spec.validate()


def test_store_with_trace_replay_is_rejected():
    spec = ScenarioSpec.from_dict({
        **with_store(),
        "estimator": {"mode": "events"},
        "trace": {"path": "examples/sample_trace.csv", "model": "replay"}})
    with pytest.raises(ScenarioSpecError, match="replay"):
        spec.validate()


# --------------------------------------------------------------------------- #
# The scenario runner refuses store specs (and says where to go)
# --------------------------------------------------------------------------- #
def test_run_scenario_redirects_store_specs():
    from repro.scenario.runner import run_scenario
    spec = ScenarioSpec.from_dict(
        with_store()).replace(estimator={"trials": 2})
    with pytest.raises(ScenarioSpecError, match="repro.store"):
        run_scenario(spec)
