"""Strict parsing and semantic validation of scenario specs."""

import pytest

from repro.scenario.spec import (
    CODE_VERSION_SALT,
    SPEC_VERSION,
    EstimatorSection,
    ScenarioSpec,
    ScenarioSpecError,
    TraceSection,
    spec_hash,
)

MINIMAL = {"version": SPEC_VERSION, "code": {"spec": "rs(n=8,r=16,m=1)"}}


def test_minimal_spec_defaults_match_the_cli():
    spec = ScenarioSpec.from_dict(MINIMAL)
    assert spec.estimator.mode == "montecarlo"
    assert spec.estimator.trials == 1000
    assert spec.lifetime.mttf_hours == 500_000.0
    assert spec.repair.repair_hours == 17.8
    assert spec.sector.p_bit == 1e-12
    assert spec.fleet.scrub_interval_hours == 168.0
    assert spec.trace is None
    spec.validate()  # defaults are a runnable scenario


def test_unknown_section_is_rejected():
    with pytest.raises(ScenarioSpecError, match="unknown section"):
        ScenarioSpec.from_dict({**MINIMAL, "tuning": {"x": 1}})


def test_unknown_key_is_rejected_with_the_known_keys():
    with pytest.raises(ScenarioSpecError, match="known keys"):
        ScenarioSpec.from_dict(
            {**MINIMAL, "estimator": {"mode": "rare", "cycles": 5}})


def test_missing_version_is_rejected():
    with pytest.raises(ScenarioSpecError, match="version"):
        ScenarioSpec.from_dict({"code": {"spec": "rs(n=8,r=16,m=1)"}})


def test_version_mismatch_is_rejected():
    with pytest.raises(ScenarioSpecError, match="not supported"):
        ScenarioSpec.from_dict({**MINIMAL, "version": SPEC_VERSION + 1})


def test_missing_code_section_is_rejected():
    with pytest.raises(ScenarioSpecError, match="required section"):
        ScenarioSpec.from_dict({"version": SPEC_VERSION,
                                "estimator": {"trials": 10}})


@pytest.mark.parametrize("section,key,value", [
    ("estimator", "mode", "magic"),
    ("lifetime", "kind", "gamma"),
    ("sector", "model", "bursty"),
    ("domains", "placement", "diagonal"),
    ("trace", "model", "spline"),
])
def test_bad_enum_values_are_rejected(section, key, value):
    data = {**MINIMAL, section: {key: value}}
    if section == "trace":
        data[section]["path"] = "some.csv"
    with pytest.raises(ScenarioSpecError, match="is not one of"):
        ScenarioSpec.from_dict(data)


def test_bool_where_a_number_is_expected_is_rejected():
    with pytest.raises(ScenarioSpecError, match="bool"):
        ScenarioSpec.from_dict({**MINIMAL,
                                "estimator": {"trials": True}})


def test_trace_section_requires_a_path():
    with pytest.raises(ScenarioSpecError, match="path"):
        ScenarioSpec.from_dict({**MINIMAL, "trace": {"model": "km"}})


def test_load_of_missing_file_is_a_clean_error(tmp_path):
    with pytest.raises(ScenarioSpecError, match="does not exist"):
        ScenarioSpec.load(tmp_path / "nope.toml")


def test_load_prefixes_errors_with_the_path(tmp_path):
    path = tmp_path / "bad.toml"
    path.write_text("version = 1\n[code]\nspec = 1.5\n")
    with pytest.raises(ScenarioSpecError, match="bad.toml"):
        ScenarioSpec.load(path)


# --------------------------------------------------------------------------- #
# Round trips and hashing
# --------------------------------------------------------------------------- #
def _rich_spec() -> ScenarioSpec:
    return ScenarioSpec.from_dict({
        "version": SPEC_VERSION,
        "code": {"spec": "stair(n=8,r=16,m=1,e=(1,2))"},
        "fleet": {"arrays": 3, "stripes_per_array": 64,
                  "scrub_interval_hours": 0.0},
        "lifetime": {"kind": "weibull", "mttf_hours": 20000.0,
                     "weibull_shape": 1.5},
        "domains": {"racks": 8, "rack_shock_rate_per_hour": 1e-4},
        "repair": {"repair_hours": 24.0, "rebuild_streams": 1.5},
        "sector": {"model": "correlated", "p_bit": 1e-10},
        "estimator": {"mode": "events", "trials": 5, "seed": 3,
                      "horizon_hours": 20000.0},
    })


def test_toml_round_trip_is_lossless():
    spec = _rich_spec()
    assert ScenarioSpec.loads(spec.dumps_toml()) == spec


def test_json_round_trip_is_lossless():
    spec = _rich_spec()
    assert ScenarioSpec.loads(spec.dumps_json(), format="json") == spec


def test_toml_round_trip_keeps_disabled_scrubbing():
    """0 is the 'disabled' sentinel, not an omitted default -- a
    scrub-disabled spec must not reload with scrubbing back on."""
    spec = _rich_spec()
    assert spec.fleet.scrub_interval_hours == 0.0
    again = ScenarioSpec.loads(spec.dumps_toml())
    assert again.fleet.scrub_interval_hours == 0.0


def test_trace_round_trip(tmp_path):
    spec = ScenarioSpec.from_dict({
        **MINIMAL,
        "trace": {"path": "examples/sample_trace.csv", "model": "piecewise",
                  "bins": 6}})
    assert ScenarioSpec.loads(spec.dumps_toml()) == spec
    path = tmp_path / "spec.json"
    spec.dump(path)
    assert ScenarioSpec.load(path) == spec


def test_canonical_dict_is_explicit_about_the_absent_trace():
    spec = ScenarioSpec.from_dict(MINIMAL)
    assert "trace" not in spec.to_dict()
    assert spec.canonical_dict()["trace"] is None


def test_spec_hash_is_content_addressed():
    base = ScenarioSpec.from_dict(MINIMAL)
    same = ScenarioSpec.loads(base.dumps_toml())
    assert spec_hash(base) == spec_hash(same)
    bumped = base.replace(estimator={"seed": 1})
    assert spec_hash(bumped) != spec_hash(base)
    # An engine-semantics bump (new salt) must invalidate every address.
    assert spec_hash(base, salt=CODE_VERSION_SALT + "x") != spec_hash(base)


def test_replace_merges_section_mappings():
    base = ScenarioSpec.from_dict(MINIMAL)
    fast = base.replace(estimator={"trials": 50})
    assert fast.estimator.trials == 50
    assert fast.estimator.mode == base.estimator.mode
    whole = base.replace(estimator=EstimatorSection(mode="rare"))
    assert whole.estimator == EstimatorSection(mode="rare")
    with pytest.raises(ScenarioSpecError, match="unknown section"):
        base.replace(engine={"mode": "rare"})


# --------------------------------------------------------------------------- #
# Semantic validation: contradictory combinations
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("updates,match", [
    ({"lifetime": {"kind": "weibull"}}, "weibull_shape"),
    ({"lifetime": {"weibull_shape": 1.5}}, "weibull"),
    ({"estimator": {"mode": "rare", "horizon_hours": 1e6}}, "horizon"),
    ({"estimator": {"mode": "rare"},
      "lifetime": {"kind": "weibull", "weibull_shape": 1.5}},
     "exponential"),
    ({"estimator": {"mode": "events", "rare_max_cycles": 7}},
     "rare-event tuning"),
    ({"estimator": {"mode": "analytic"},
      "lifetime": {"kind": "weibull", "weibull_shape": 2.0}},
     "exponential"),
    ({"estimator": {"mode": "analytic"},
      "domains": {"racks": 4, "rack_shock_rate_per_hour": 1e-4}},
     "independent"),
    ({"domains": {"rack_kill_probability": 0.5}}, "rack_kill_probability"),
    ({"domains": {"rack_shock_rate_per_hour": 1e-4}}, "racks >= 2"),
    ({"domains": {"racks": 4, "enclosure_kill_probability": 0.5}},
     "enclosure_kill_probability"),
    ({"domains": {"batch_accel": 4.0}}, "batch_fraction"),
    ({"domains": {"batch_fraction": 0.5}}, "batch_accel"),
    ({"domains": {"placement": "contiguous"}}, "racks >= 2"),
    ({"fleet": {"scrub_interval_hours": -1.0}}, "scrub"),
    ({"fleet": {"arrays": 0}}, "arrays"),
    ({"estimator": {"trials": 0}}, "trials"),
])
def test_contradictory_specs_are_rejected(updates, match):
    spec = ScenarioSpec.from_dict(MINIMAL).replace(**updates)
    with pytest.raises(ScenarioSpecError, match=match):
        spec.validate()


def test_rare_mode_rejects_km_trace_fit():
    spec = ScenarioSpec.from_dict({
        **MINIMAL,
        "trace": {"path": "examples/sample_trace.csv", "model": "km"},
        "estimator": {"mode": "rare"}})
    with pytest.raises(ScenarioSpecError, match="piecewise"):
        spec.validate()


def test_replay_outside_events_mode_is_rejected():
    spec = ScenarioSpec.from_dict({
        **MINIMAL,
        "trace": {"path": "examples/sample_trace.csv", "model": "replay"}})
    with pytest.raises(ScenarioSpecError, match="events"):
        spec.validate()
