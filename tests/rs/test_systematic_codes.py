"""Unit tests for the systematic MDS (Reed-Solomon) building-block codes."""

import numpy as np
import pytest

from repro.gf.field import get_field
from repro.gf.matrix import GFMatrix
from repro.gf.regions import OperationCounter, RegionOps
from repro.rs import (
    CauchyRSCode,
    SystematicMDSCode,
    UnrecoverableErasureError,
    VandermondeRSCode,
    verify_mds_property,
    verify_systematic,
)
from repro.rs.verify import count_nonzero_coefficients, verify_erasure_recovery

CODE_CLASSES = [CauchyRSCode, VandermondeRSCode]


def random_data(code, size=32, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, code.field.order, size,
                         dtype=code.field.element_dtype)
            for _ in range(code.dimension)]


@pytest.mark.parametrize("cls", CODE_CLASSES)
class TestConstruction:
    def test_generator_is_systematic(self, cls):
        code = cls(10, 6)
        assert verify_systematic(code)

    def test_mds_property_small(self, cls):
        assert verify_mds_property(cls(8, 4))
        assert verify_mds_property(cls(7, 5))

    def test_parity_matrix_shape(self, cls):
        code = cls(11, 6)
        assert code.parity_matrix().shape == (6, 5)

    def test_length_exceeding_field_order_rejected(self, cls):
        with pytest.raises(ValueError):
            cls(300, 10, get_field(8))

    def test_large_field_allows_long_codes(self, cls):
        code = cls(300, 290, get_field(16))
        assert code.length == 300

    def test_invalid_dimensions_rejected(self, cls):
        with pytest.raises(ValueError):
            cls(4, 4)
        with pytest.raises(ValueError):
            cls(4, 0)


@pytest.mark.parametrize("cls", CODE_CLASSES)
class TestEncodeRecover:
    def test_codeword_starts_with_data(self, cls):
        code = cls(9, 5)
        data = random_data(code)
        codeword = code.encode_codeword(data)
        assert len(codeword) == 9
        for i in range(5):
            assert np.array_equal(codeword[i], data[i])

    def test_recover_every_erasure_pattern(self, cls):
        code = cls(8, 5)
        assert verify_erasure_recovery(code)

    def test_recover_partial_targets_only(self, cls):
        code = cls(8, 5)
        data = random_data(code, seed=3)
        codeword = code.encode_codeword(data)
        damaged = list(codeword)
        damaged[1] = None
        damaged[6] = None
        recovered = code.recover(damaged, wanted=[6])
        assert set(recovered) == {6}
        assert np.array_equal(recovered[6], codeword[6])

    def test_recover_with_too_few_symbols_raises(self, cls):
        code = cls(6, 4)
        data = random_data(code, seed=4)
        codeword = code.encode_codeword(data)
        damaged = [None, None, None] + list(codeword[3:])
        with pytest.raises(UnrecoverableErasureError):
            code.recover(damaged)

    def test_recover_wrong_length_raises(self, cls):
        code = cls(6, 4)
        with pytest.raises(ValueError):
            code.recover([None] * 5)

    def test_recover_nothing_missing(self, cls):
        code = cls(6, 4)
        data = random_data(code, seed=5)
        codeword = code.encode_codeword(data)
        assert code.recover(codeword) == {}

    def test_recover_all_returns_full_codeword(self, cls):
        code = cls(7, 4)
        data = random_data(code, seed=6)
        codeword = code.encode_codeword(data)
        damaged = [None if i in (0, 5, 6) else codeword[i] for i in range(7)]
        full = code.recover_all(damaged)
        assert all(np.array_equal(a, b) for a, b in zip(full, codeword))

    def test_encode_counts_operations(self, cls):
        counter = OperationCounter()
        ops = RegionOps(get_field(8), counter)
        code = cls(8, 5)
        code.encode(random_data(code, seed=7), ops)
        # Each of the 3 parities is a combination of 5 data symbols.
        assert counter.total() <= 15
        assert counter.total() >= 12  # allow a few unit coefficients

    def test_encode_wrong_data_count(self, cls):
        code = cls(6, 4)
        with pytest.raises(ValueError):
            code.encode(random_data(code, seed=8)[:-1])

    def test_encode_inconsistent_sizes(self, cls):
        code = cls(6, 4)
        data = random_data(code, seed=9)
        data[0] = data[0][:16]
        with pytest.raises(ValueError):
            code.encode(data)


@pytest.mark.parametrize("cls", CODE_CLASSES)
class TestCoefficientView:
    def test_decode_matrix_identity_for_data_positions(self, cls):
        code = cls(8, 5)
        coeffs = code.decode_matrix(range(5), [0, 3])
        assert np.array_equal(coeffs[0], np.array([1, 0, 0, 0, 0]))
        assert np.array_equal(coeffs[1], np.array([0, 0, 0, 1, 0]))

    def test_decode_matrix_reconstructs_scalars(self, cls):
        code = cls(9, 5)
        data = [3, 7, 11, 200, 42]
        codeword = code.scalar_encode(data)
        known = [2, 4, 5, 7, 8]
        unknown = [0, 1, 3, 6]
        coeffs = code.decode_matrix(known, unknown)
        f = code.field
        for row, target in zip(coeffs, unknown):
            value = 0
            for c, pos in zip(row, known):
                value ^= f.mul(int(c), codeword[pos])
            assert value == codeword[target]

    def test_decode_matrix_requires_exactly_k_known(self, cls):
        code = cls(8, 5)
        with pytest.raises(ValueError):
            code.decode_matrix(range(4), [7])
        with pytest.raises(ValueError):
            code.decode_matrix([0, 0, 1, 2, 3], [7])

    def test_decode_matrix_is_cached(self, cls):
        code = cls(8, 5)
        a = code.decode_matrix((0, 1, 2, 3, 4), (6,))
        b = code.decode_matrix((0, 1, 2, 3, 4), (6,))
        assert a is b

    def test_coefficient_for(self, cls):
        code = cls(8, 5)
        assert code.coefficient_for(2, 2) == 1
        assert code.coefficient_for(0, 1) == 0

    def test_scalar_encode_wrong_length(self, cls):
        code = cls(8, 5)
        with pytest.raises(ValueError):
            code.scalar_encode([1, 2, 3])


class TestBaseClassValidation:
    def test_non_systematic_generator_rejected(self):
        field = get_field(8)
        generator = GFMatrix.cauchy(range(4), range(4, 10), field)
        padded = GFMatrix(np.hstack([generator.data,
                                     np.zeros((4, 0), dtype=np.int64)]), field)
        with pytest.raises(ValueError):
            SystematicMDSCode(6, 4, padded, field)

    def test_generator_shape_mismatch_rejected(self):
        field = get_field(8)
        generator = GFMatrix.identity(4, field)
        with pytest.raises(ValueError):
            SystematicMDSCode(6, 4, generator, field)

    def test_count_nonzero_coefficients(self):
        code = CauchyRSCode(8, 5)
        parity = code.parity_matrix()
        assert count_nonzero_coefficients(parity) == 15

    def test_cross_construction_compatibility(self):
        """Cauchy and Vandermonde codes both recover the same data."""
        data = random_data(CauchyRSCode(8, 5), seed=10)
        for cls in CODE_CLASSES:
            code = cls(8, 5)
            codeword = code.encode_codeword(data)
            damaged = [None, codeword[1], None, codeword[3], codeword[4],
                       codeword[5], None, codeword[7]]
            full = code.recover_all(damaged)
            for i in range(5):
                assert np.array_equal(full[i], data[i])
