"""Property-based tests for the MDS building-block codes."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rs import CauchyRSCode, VandermondeRSCode


@st.composite
def code_parameters(draw):
    dimension = draw(st.integers(min_value=1, max_value=8))
    parities = draw(st.integers(min_value=1, max_value=5))
    return dimension + parities, dimension


@given(code_parameters(), st.integers(min_value=0, max_value=2 ** 31),
       st.booleans())
@settings(max_examples=60, deadline=None)
def test_any_erasure_pattern_within_budget_is_recoverable(params, seed, use_cauchy):
    """The MDS guarantee: any (length - dimension) erasures can be repaired."""
    length, dimension = params
    cls = CauchyRSCode if use_cauchy else VandermondeRSCode
    code = cls(length, dimension)
    rng = np.random.default_rng(seed)
    data = [rng.integers(0, 256, 16, dtype=np.uint8) for _ in range(dimension)]
    codeword = code.encode_codeword(data)
    erasures = rng.choice(length, size=length - dimension, replace=False)
    damaged = [None if i in erasures else codeword[i] for i in range(length)]
    recovered = code.recover_all(damaged)
    for original, repaired in zip(codeword, recovered):
        assert np.array_equal(original, repaired)


@given(code_parameters(), st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=40, deadline=None)
def test_encoding_is_linear(params, seed):
    """encode(a XOR b) == encode(a) XOR encode(b) symbol-wise."""
    length, dimension = params
    code = CauchyRSCode(length, dimension)
    rng = np.random.default_rng(seed)
    a = [rng.integers(0, 256, 8, dtype=np.uint8) for _ in range(dimension)]
    b = [rng.integers(0, 256, 8, dtype=np.uint8) for _ in range(dimension)]
    combined = [x ^ y for x, y in zip(a, b)]
    pa = code.encode(a)
    pb = code.encode(b)
    pc = code.encode(combined)
    for x, y, z in zip(pa, pb, pc):
        assert np.array_equal(x ^ y, z)


@given(code_parameters())
@settings(max_examples=30, deadline=None)
def test_cauchy_and_vandermonde_are_both_systematic(params):
    length, dimension = params
    for cls in (CauchyRSCode, VandermondeRSCode):
        generator = cls(length, dimension).generator.data
        assert np.array_equal(generator[:, :dimension],
                              np.eye(dimension, dtype=np.int64))
