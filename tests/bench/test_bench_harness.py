"""Tests for the benchmark harness (speed measurement, figure data, reporting)."""

import numpy as np
import pytest

from repro.bench import (
    device_only_losses,
    format_table,
    measure_decoding_speed,
    measure_encoding_speed,
    stripe_symbols,
    summarize_ratio,
    worst_case_losses_sd,
    worst_case_losses_stair,
)
from repro.bench.figures import (
    figure9_rows,
    figure10_rows,
    figure17_rows,
    figure18_rows,
    figure19a_rows,
    figure19b_rows,
    stair_vs_sd_summary,
    worst_e_for_s,
)
from repro.codes import SDCode, StairStripeCode


class TestSpeedMeasurement:
    def test_stripe_symbols_fixed_stripe_size(self):
        code = StairStripeCode(n=8, r=4, m=2, e=(1,))
        data, total = stripe_symbols(code, stripe_bytes=32 * 8 * 4)
        assert len(data) == code.num_data_symbols
        assert total == 32 * 8 * 4
        assert len(data[0]) == 32

    def test_stripe_symbols_fixed_symbol_size(self):
        code = StairStripeCode(n=8, r=4, m=2, e=(1,))
        data, total = stripe_symbols(code, stripe_bytes=0, symbol_bytes=64)
        assert len(data[0]) == 64
        assert total == 64 * 8 * 4

    def test_stripe_symbols_uint16_for_wide_stripes(self):
        code = SDCode(n=32, r=16, m=1, s=1)
        data, _ = stripe_symbols(code, stripe_bytes=1 << 16)
        assert data[0].dtype == np.uint16

    def test_encoding_speed_result(self):
        code = StairStripeCode(n=6, r=4, m=1, e=(1,))
        result = measure_encoding_speed(code, stripe_bytes=6 * 4 * 64, repeats=1)
        assert result.mb_per_second > 0
        assert result.seconds_per_stripe > 0
        assert "STAIR" in result.label

    def test_decoding_speed_result(self):
        code = StairStripeCode(n=6, r=4, m=1, e=(1,))
        losses = worst_case_losses_stair(6, 4, 1, (1,))
        result = measure_decoding_speed(code, losses, stripe_bytes=6 * 4 * 64,
                                        repeats=1)
        assert result.mb_per_second > 0

    def test_worst_case_loss_patterns(self):
        stair = worst_case_losses_stair(8, 4, 2, (1, 2))
        assert len(stair) == 2 * 4 + 3
        assert {(i, 0) for i in range(4)} <= set(stair)
        sd = worst_case_losses_sd(8, 4, 2, 3)
        assert len(sd) == 2 * 4 + 3
        assert device_only_losses(4, 2) == [(i, j) for j in range(2)
                                            for i in range(4)]

    def test_worst_e_for_s_is_a_partition(self):
        e = worst_e_for_s(8, 16, 2, 4)
        assert sum(e) == 4 and e == tuple(sorted(e))


class TestFigureData:
    def test_figure9_rows(self):
        rows = figure9_rows(r_values=(8,))
        assert {row["e"] for row in rows} == {(4,), (1, 3), (2, 2), (1, 1, 2),
                                              (1, 1, 1, 1)}
        assert all(row["best"] in ("standard", "upstairs", "downstairs")
                   for row in rows)

    def test_figure10_rows(self):
        rows = figure10_rows(s_values=(2,), r_values=(8,))
        assert len(rows) == 2  # m' = 1, 2
        assert all(row["stair_devices_saved"] <= row["sd_devices_saved"]
                   for row in rows)

    def test_figure17_and_18_rows(self):
        rows17 = figure17_rows(p_bits=(1e-12,))
        rows18 = figure18_rows(p_bits=(1e-12,))
        assert {row["code"] for row in rows17} >= {"RS", "STAIR e=(1,)", "SD s=2"}
        assert all(row["mttdl_hours"] > 0 for row in rows17 + rows18)

    def test_figure19_rows(self):
        cdf_rows = figure19a_rows(pairs=((0.9, 1.0),))
        assert max(row["cdf"] for row in cdf_rows) <= 1.0 + 1e-12
        mttdl_rows = figure19b_rows(s_values=(2,), p_bits=(1e-12,),
                                    pairs=((0.9, 1.0),))
        labels = {row["e"] for row in mttdl_rows}
        assert labels == {"(2)", "(1,1)"}

    def test_stair_vs_sd_summary(self):
        rows = [
            {"family": "STAIR", "n": 8, "r": 16, "m": 1, "s": 2,
             "mb_per_second": 200.0},
            {"family": "SD", "n": 8, "r": 16, "m": 1, "s": 2,
             "mb_per_second": 100.0},
            {"family": "STAIR", "n": 8, "r": 16, "m": 1, "s": 4,
             "mb_per_second": 50.0},
        ]
        summary = stair_vs_sd_summary(rows)
        assert summary["points"] == 1
        assert summary["average_pct"] == pytest.approx(100.0)

    def test_stair_vs_sd_summary_empty(self):
        assert stair_vs_sd_summary([])["points"] == 0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "long header"], [[1, 2.5], [30, 4.0]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long header" in lines[1]
        assert "2.50" in text

    def test_summarize_ratio(self):
        message = summarize_ratio("enc", [200, 150], [100, 100])
        assert "+75.0%" in message
        assert summarize_ratio("none", [], []).endswith("no comparable points")
