"""The simulated-vs-analytic validation table (§7 cross-check).

The headline property of the rare-event tentpole: the m >= 2 rows run
at the paper's *true* parameters (1/λ = 500,000 h, 1/μ = 17.8 h) --
with no accelerated-failure surrogate -- and still land within 3σ of
the general birth-death chain.
"""

import pytest

from repro.bench.sim_validation import (
    DEFAULT_CODES,
    _normalize,
    sim_vs_analytic_rows,
)
from repro.reliability.mttdl import CodeReliability


def test_default_table_has_paper_regime_m2_and_m3_rows():
    """The accelerated-failure sidestep is gone: the default table
    carries m = 2 and m = 3 rows routed to the rare-event estimator."""
    normalized = [_normalize(entry) for entry in DEFAULT_CODES]
    rare_ms = {m for _, m, estimator in normalized if estimator == "rare"}
    assert {2, 3} <= rare_ms
    assert all(estimator == "direct"
               for _, m, estimator in normalized if m == 1)


def test_paper_regime_rows_agree_within_3_sigma():
    """One direct m = 1 row plus the rare-event m = 2 / m = 3 rows, all
    at the paper's true 1/λ = 500,000 h: every estimate must bracket
    its Markov reference within 3σ."""
    codes = (
        (CodeReliability.reed_solomon(), 1, "direct"),
        (CodeReliability.sd(2), 2, "rare"),
        (CodeReliability.reed_solomon(), 3, "rare"),
    )
    rows = sim_vs_analytic_rows(codes, trials=300, seed=7)
    assert [row["m"] for row in rows] == [1, 2, 3]
    for row in rows:
        assert row["agrees"], (
            f"{row['code']} (m={row['m']}, {row['estimator']}): simulated "
            f"{row['sim_mttdl_hours']:.4g}h, CI [{row['ci_low_hours']:.4g}, "
            f"{row['ci_high_hours']:.4g}], analytic "
            f"{row['analytic_mttdl_hours']:.4g}h")
    # The m >= 2 rows really are the ~1e12 h regime direct MC cannot
    # absorb -- not a softened surrogate.
    assert rows[1]["sim_mttdl_hours"] > 1e11
    assert rows[2]["sim_mttdl_hours"] > 1e11


def test_normalize_accepts_legacy_entry_forms():
    code = CodeReliability.reed_solomon()
    assert _normalize(code) == (code, 1, "direct")
    assert _normalize((code, 2)) == (code, 2, "direct")
    assert _normalize((code, 2, "rare")) == (code, 2, "rare")
    with pytest.raises(ValueError):
        _normalize((code, 2, "splitting"))


# --------------------------------------------------------------------------- #
# Correlated-failure rows: degradation vs placement, engine agreement
# --------------------------------------------------------------------------- #
from repro.bench.sim_validation import correlated_failure_rows  # noqa: E402


def test_correlated_rows_quantify_degradation_and_agree():
    """The acceptance criterion for the failure-domain tentpole: a
    nonzero rack-shock rate produces a statistically significant MTTDL
    drop (the independent analytic sits far above the correlated CI),
    the exact anchors hold (chain at lambda + s for spread placement),
    and the event engine agrees with the vectorized runner on the same
    correlated scenarios."""
    rows = correlated_failure_rows(trials=300, event_trials=40, seed=0)
    by_name = {row["scenario"]: row for row in rows}
    assert set(by_name) == {"independent", "rack shocks, spread",
                            "rack shocks, contiguous"}

    independent = by_name["independent"]
    spread = by_name["rack shocks, spread"]
    contig = by_name["rack shocks, contiguous"]

    for row in rows:
        assert row["agrees"], row

    # Statistically significant drop: the independent analytic MTTDL
    # lies far above the correlated confidence intervals.
    for row in (spread, contig):
        assert row["ci_high_hours"] < independent["analytic_mttdl_hours"]
        assert row["degradation"] > 2.0

    # Placement matters: contiguous placement is strictly worse.
    assert contig["sim_mttdl_hours"] < 0.5 * spread["sim_mttdl_hours"]

    # Event engine vs vectorized runner on the identical correlated
    # scenario, at 3 sigma.
    for row in (spread, contig):
        assert row["engines_agree"], row
        assert row["event_std_error"] > 0


# --------------------------------------------------------------------------- #
# Trace-fitted rows: model confronts data
# --------------------------------------------------------------------------- #
from repro.bench.sim_validation import trace_validation_rows  # noqa: E402


def test_trace_rows_recover_the_chain_and_break_constant_hazard():
    """The acceptance criterion for the trace tentpole: a model fitted
    on a seeded exponential-generated trace reproduces the analytic
    m-parity MTTDL within 3 sigma in the vectorized runner *and* the
    rare-event estimator (the latter at the paper's true
    1/lambda = 500,000 h), while the bathtub-shaped trace lands outside
    the constant-hazard impostor's 3 sigma interval."""
    rows = trace_validation_rows(trials=400, seed=0)
    by_name = {row["scenario"]: row for row in rows}
    assert set(by_name) == {"exponential trace, m=1 (vectorized)",
                            "exponential trace, m=2 (rare-event)",
                            "bathtub trace vs constant hazard"}

    for row in rows:
        assert row["agrees"] == row["expect_agreement"], row

    rare = by_name["exponential trace, m=2 (rare-event)"]
    assert rare["sim_mttdl_hours"] > 1e11          # the ~1e12 h regime
    # Enough effective weight mass for the delta-method SE to mean
    # something (pure-failure-path biasing at m = 2 keeps the Kish
    # ratio in the low percent range -- that is priced into the CI).
    assert rare["effective_sample_size"] > 100.0

    bathtub = by_name["bathtub trace vs constant hazard"]
    # "Measurably breaks": the gap is a double-digit percentage, not a
    # CI grazing the boundary.
    assert abs(bathtub["mttdl_ratio"] - 1.0) > 0.10
    # Fitted means are honest: close to the generating truth for the
    # exponential rows.
    exp_row = by_name["exponential trace, m=1 (vectorized)"]
    assert exp_row["fitted_mean_hours"] == pytest.approx(1000.0,
                                                         rel=0.05)
