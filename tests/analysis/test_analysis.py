"""Tests for the space, update-penalty and encoding-cost analyses."""

import pytest

from repro.analysis import (
    compare_space,
    devices_saved_sd,
    devices_saved_stair,
    encoding_cost_sweep,
    figure9_data,
    figure10_grid,
    figure14_data,
    figure15_data,
    redundant_sectors_idr,
    redundant_sectors_stair,
    redundant_sectors_traditional,
    reed_solomon_update_penalty,
    sd_update_penalty,
    stair_penalty_statistics,
    stair_update_penalty,
    storage_efficiency_stair,
)


class TestSpace:
    def test_devices_saved_formula(self):
        assert devices_saved_stair(s=4, m_prime=4, r=16) == pytest.approx(4 - 0.25)
        assert devices_saved_stair(s=4, m_prime=2, r=16) == pytest.approx(1.75)
        assert devices_saved_sd(s=3, r=16) == pytest.approx(3 - 3 / 16)

    def test_m_prime_cannot_exceed_s(self):
        with pytest.raises(ValueError):
            devices_saved_stair(s=2, m_prime=3, r=8)

    def test_saving_grows_with_r_and_m_prime(self):
        assert devices_saved_stair(4, 4, 32) > devices_saved_stair(4, 4, 8)
        assert devices_saved_stair(4, 4, 16) > devices_saved_stair(4, 2, 16)

    def test_idr_comparison_from_section_2(self):
        """n=8, m=2, beta=4: IDR adds 24 redundant sectors, STAIR e=(1,4) adds 5."""
        assert redundant_sectors_idr(4, 8, 2, 16) - 2 * 16 == 24
        assert redundant_sectors_stair((1, 4), 2, 16) - 2 * 16 == 5

    def test_traditional_redundancy(self):
        assert redundant_sectors_traditional(m=2, m_prime=3, r=16) == 80

    def test_storage_efficiency(self):
        assert storage_efficiency_stair(8, 16, 1, 0) == pytest.approx(7 / 8)
        assert storage_efficiency_stair(8, 16, 1, 3) == pytest.approx(
            (112 - 3) / 128)

    def test_compare_space(self):
        comparison = compare_space(8, 16, 2, (1, 4))
        assert comparison.stair_saving_vs_traditional == 2 * 16 - 5
        assert comparison.stair_saving_vs_idr == 24 - 5

    def test_figure10_grid_shape(self):
        grid = figure10_grid(s_values=(1, 2), r_values=(8, 16))
        assert set(grid) == {1, 2}
        assert set(grid[2]) == {1, 2}
        assert len(grid[2][1]) == 2


class TestUpdatePenalty:
    def test_rs_penalty(self):
        assert reed_solomon_update_penalty(2) == 2.0

    def test_stair_penalty_exceeds_rs(self):
        assert stair_update_penalty(8, 8, 2, (1, 2)) > 2.0

    def test_sd_penalty_exceeds_rs(self):
        assert sd_update_penalty(8, 8, 2, 2) > 2.0

    def test_statistics_cover_all_vectors(self):
        stats = stair_penalty_statistics(8, 8, 1, 3)
        assert set(stats.per_vector) == {(3,), (1, 2), (1, 1, 1)}
        assert stats.minimum <= stats.average <= stats.maximum

    def test_figure14_data_structure(self):
        data = figure14_data(n=8, s=3, m_values=(1, 2), r_values=(8,))
        assert set(data) == {8}
        assert (1, 2) in data[8]
        assert set(data[8][(1, 2)]) == {1, 2}

    def test_figure15_penalties_increase_with_s(self):
        data = figure15_data(n=8, r=8, m_values=(1,), stair_s_values=(1, 2, 3),
                             sd_s_values=(1, 2))
        stair = data[1]["stair"]
        assert stair[1].average < stair[2].average < stair[3].average
        assert data[1]["rs"] == 1.0


class TestEncodingCost:
    def test_sweep_covers_all_partitions(self):
        points = encoding_cost_sweep(8, 16, 2, 4)
        assert {p.e for p in points} == {(4,), (1, 3), (2, 2), (1, 1, 2),
                                         (1, 1, 1, 1)}

    def test_parity_reuse_beats_standard_for_large_r(self):
        for point in encoding_cost_sweep(8, 32, 2, 4):
            assert min(point.upstairs, point.downstairs) < point.standard
            assert point.best() in ("upstairs", "downstairs")

    def test_figure9_data_keys(self):
        data = figure9_data(r_values=(8, 16))
        assert set(data) == {8, 16}
