"""Docs hygiene checker (run by CI and by tests/test_docs_examples.py).

Three classes of rot this catches, across ``README.md`` and every page
under ``docs/``:

* **dead relative links** -- ``[text](path)`` targets that do not exist
  on disk (http/mailto/anchor-only links are skipped; anchors on
  relative links are stripped before resolving);
* **wiki-link placeholders** -- ``[[...]]`` outside fenced code blocks,
  which render as literal brackets on GitHub;
* **pages without executable examples** -- every ``docs/*.md`` page
  must carry at least one fenced ``python`` block, because
  ``tests/test_docs_examples.py`` executes those blocks in CI and a
  page without any is a tutorial that can silently rot;
* **pages unreachable from the index** -- ``docs/index.md`` is the
  guided reading order; every other ``docs/*.md`` page must be linked
  from it (a chapter nobody can navigate to is a chapter nobody
  reads).

Exit status is non-zero when any problem is found::

    python tools/check_docs.py
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

_LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
_FENCE_RE = re.compile(r"^```.*?^```[ \t]*$", re.DOTALL | re.MULTILINE)
_PYTHON_FENCE_RE = re.compile(r"^```python[ \t]*\n.*?^```[ \t]*$",
                              re.DOTALL | re.MULTILINE)
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def markdown_pages(root: pathlib.Path = REPO_ROOT) -> list[pathlib.Path]:
    """The pages the checker covers: the README plus the docs tree."""
    pages = [root / "README.md"]
    pages += sorted((root / "docs").glob("*.md"))
    return [page for page in pages if page.is_file()]


def _strip_fences(text: str) -> str:
    """Remove fenced code blocks (their contents are not rendered
    markdown, so links and ``[[...]]`` inside them are fine)."""
    return _FENCE_RE.sub("", text)


def _relative_link_targets(page: pathlib.Path, prose: str | None = None,
                           ) -> list[tuple[str, pathlib.Path]]:
    """``(raw_target, resolved_path)`` for every relative link on a
    page (fenced code stripped; external/anchor-only links skipped) --
    the single definition both the dead-link check and the
    index-reachability check resolve links with.  Pass ``prose`` (the
    already fence-stripped text) to avoid re-reading the page."""
    if prose is None:
        prose = _strip_fences(page.read_text())
    targets = []
    for match in _LINK_RE.finditer(prose):
        target = match.group(1)
        if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        targets.append((target, (page.parent / path).resolve()))
    return targets


def check_page(page: pathlib.Path,
               root: pathlib.Path = REPO_ROOT) -> list[str]:
    """All problems found on one page, as human-readable strings."""
    text = page.read_text()
    prose = _strip_fences(text)
    problems = []
    for target, resolved in _relative_link_targets(page, prose):
        if not resolved.exists():
            problems.append(
                f"{page.relative_to(root)}: dead relative link "
                f"({target!r})")
    if "[[" in prose:
        problems.append(
            f"{page.relative_to(root)}: '[[...]]' wiki-link placeholder "
            "outside a code block")
    if page.parent.name == "docs" and \
            not _PYTHON_FENCE_RE.search(text):
        problems.append(
            f"{page.relative_to(root)}: no executable ```python block "
            "(every docs page must carry at least one; "
            "tests/test_docs_examples.py runs them in CI)")
    return problems


def check_index(root: pathlib.Path = REPO_ROOT) -> list[str]:
    """Every docs page must be reachable from ``docs/index.md``."""
    docs = root / "docs"
    index = docs / "index.md"
    if not index.is_file():
        return ["docs/index.md is missing (the docs tree needs a "
                "reading-order index linking every chapter)"]
    linked = {resolved for _, resolved in _relative_link_targets(index)}
    problems = []
    for page in sorted(docs.glob("*.md")):
        if page == index:
            continue
        if page.resolve() not in linked:
            problems.append(
                f"{page.relative_to(root)}: not linked from "
                "docs/index.md (every chapter must be reachable from "
                "the reading-order index)")
    return problems


def main() -> int:
    problems = []
    pages = markdown_pages()
    for page in pages:
        problems.extend(check_page(page))
    problems.extend(check_index())
    if problems:
        print("docs hygiene check FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"docs hygiene check passed ({len(pages)} pages)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
