#!/usr/bin/env python3
"""Quickstart: encode a stripe with a STAIR code, injure it, and recover it.

This walks through the paper's running example -- a STAIR code with
n = 8 devices, r = 4 sectors per chunk, m = 2 tolerable device failures
and sector-failure coverage e = (1, 1, 2) -- using the public API.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import StairCode, StairConfig


def main() -> None:
    # 1. Configure and build the code.
    config = StairConfig(n=8, r=4, m=2, e=(1, 1, 2))
    code = StairCode(config)
    print(f"Configuration      : {config.describe()}")
    print(f"Data symbols/stripe: {config.num_data_symbols}")
    print(f"Parity symbols     : {config.num_parity_symbols} "
          f"(2 parity chunks + {config.s} in-stripe global parity sectors)")
    print(f"Storage efficiency : {config.storage_efficiency:.3f}")
    print(f"Encoding method    : {code.select_encoding_method()} "
          f"(costs: {code.mult_xor_counts()})")

    # 2. Encode one stripe of random user data (64-byte sectors here).
    rng = np.random.default_rng(2014)
    data = [rng.integers(0, 256, 64, dtype=np.uint8)
            for _ in range(config.num_data_symbols)]
    stripe = code.encode(data)
    print("\nEncoded one stripe of "
          f"{config.num_data_symbols * 64} user bytes into an "
          f"{config.r}x{config.n} grid of 64-byte sectors.")

    # 3. Injure it: two whole devices fail and four more sectors go bad in
    #    three other devices -- the worst case this configuration covers.
    damaged = stripe.erase_chunks([6, 7]).erase(
        [(3, 3), (3, 4), (2, 5), (3, 5)])
    print(f"Injected failures  : devices 6 and 7 lost, plus 4 bad sectors "
          f"({len(damaged.lost_positions())} symbols lost in total)")

    # 4. Decode and verify.
    repaired = code.decode(damaged)
    ok = all(np.array_equal(a, b)
             for a, b in zip(repaired.data_symbols(), data))
    print(f"Recovery successful: {ok}")

    # 5. The byte-level convenience API does the same in two calls.
    payload = b"STAIR codes tolerate device AND sector failures " * 20
    stripe2 = code.encode_bytes(payload, symbol_size=64)
    damaged2 = stripe2.erase_chunks([0, 1]).erase([(0, 2), (1, 3), (3, 5)])
    recovered_payload = code.decode_bytes(damaged2, length=len(payload))
    print(f"Byte API roundtrip : {recovered_payload == payload}")


if __name__ == "__main__":
    main()
