#!/usr/bin/env python3
"""RAID-6 rebuild vs STAIR: surviving sector failures during a rebuild.

The paper's motivating scenario (§1): a device fails, the array enters
critical mode, and latent sector errors are discovered on the surviving
devices while rebuilding.  A RAID-6 array burns an entire second parity
device to survive that; a STAIR code achieves the same protection with a
handful of parity *sectors*.

This example builds both arrays on the storage-array simulator, injects
the same failure scenario, and compares the outcome and the storage
overhead.

Run with:  python examples/raid6_sector_recovery.py
"""

import numpy as np

from repro.array import DataLossError, StorageArray, random_payload
from repro.codes import RAID5Code, RAID6Code, StairStripeCode

N_DEVICES = 8
ROWS = 16
SYMBOL = 128
STRIPES = 4


def build_arrays():
    """Three arrays storing the same user data with different codes."""
    return {
        "RAID-5 (1 parity device)": StorageArray(
            RAID5Code(n=N_DEVICES, r=ROWS), STRIPES, SYMBOL),
        "RAID-6 (2 parity devices)": StorageArray(
            RAID6Code(n=N_DEVICES, r=ROWS), STRIPES, SYMBOL),
        "STAIR m=1, e=(1,) (1 parity device + 1 sector)": StorageArray(
            StairStripeCode(n=N_DEVICES, r=ROWS, m=1, e=(1,)), STRIPES, SYMBOL),
    }


def inject_rebuild_scenario(array: StorageArray, rng: np.random.Generator) -> None:
    """One device failure plus a latent sector error found during rebuild."""
    array.fail_device(0)
    surviving = [d for d in range(N_DEVICES) if d != 0]
    device = int(rng.choice(surviving))
    stripe = int(rng.integers(0, STRIPES))
    row = int(rng.integers(0, ROWS))
    array.fail_sector(stripe, row, device)


def main() -> None:
    rng = np.random.default_rng(7)
    arrays = build_arrays()
    payloads = {}

    print(f"{'code':50s} {'efficiency':>10s} {'outcome':>28s}")
    print("-" * 92)
    for name, array in arrays.items():
        payload = random_payload(array.capacity, seed=1)
        payloads[name] = payload
        array.write(payload)
        inject_rebuild_scenario(array, rng)
        try:
            array.rebuild()
            array.scrub()
            ok = array.read(len(payload)) == payload
            outcome = "recovered, data intact" if ok else "CORRUPTED"
        except DataLossError:
            outcome = "DATA LOSS"
        efficiency = array.code.storage_efficiency
        print(f"{name:50s} {efficiency:10.3f} {outcome:>28s}")

    print("\nTakeaway: RAID-5 loses data the moment a latent sector error is "
          "found during a rebuild; RAID-6 survives but pays an entire extra "
          "parity device; the STAIR code survives the same scenario with one "
          "extra parity *sector* per stripe, keeping nearly RAID-5 storage "
          "efficiency.")


if __name__ == "__main__":
    main()
