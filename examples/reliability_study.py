#!/usr/bin/env python3
"""Reliability study: how should the sector-failure coverage e be configured?

Reproduces the §7.2 analysis interactively: for the paper's 10 PB storage
system it computes MTTDL_sys for Reed-Solomon, SD and several STAIR
configurations under both the independent and the correlated (bursty)
sector-failure models, and asks the configurator which coverage vector to
deploy for a given redundancy budget.

Run with:  python examples/reliability_study.py
"""

from repro.bench.reporting import print_table
from repro.reliability import (
    CodeReliability,
    CorrelatedSectorModel,
    IndependentSectorModel,
    SystemParameters,
    mttdl_system,
    recommend_coverage,
)

P_BIT = 1e-12

CODES = [
    CodeReliability.reed_solomon(),
    CodeReliability.stair([1]),
    CodeReliability.stair([2]),
    CodeReliability.stair([1, 1]),
    CodeReliability.stair([3]),
    CodeReliability.stair([1, 2]),
    CodeReliability.stair([1, 1, 1]),
    CodeReliability.sd(2),
    CodeReliability.sd(3),
]


def main() -> None:
    params = SystemParameters()
    independent = IndependentSectorModel.from_p_bit(P_BIT, params.r,
                                                    params.sector_bytes)
    bursty = CorrelatedSectorModel.from_p_bit(P_BIT, params.r,
                                              params.sector_bytes,
                                              b1=0.98, alpha=1.79)

    rows = []
    for code in CODES:
        rows.append([
            code.label(),
            f"{code.storage_efficiency(params):.4f}",
            mttdl_system(code, params, independent),
            mttdl_system(code, params, bursty),
        ])
    print_table(
        ["code", "efficiency", "MTTDL (independent, h)", "MTTDL (bursty, h)"],
        rows,
        title=(f"10 PB system, 300 GB drives, n=8, r=16, m=1, "
               f"P_bit={P_BIT:g}"),
        float_format="{:.3g}",
    )

    print("\nCoverage recommendation for a budget of s = 3 parity sectors:")
    for label, model in (("independent failures", independent),
                         ("bursty failures (b1=0.9, alpha=1)",
                          CorrelatedSectorModel.from_p_bit(
                              P_BIT, params.r, params.sector_bytes,
                              b1=0.9, alpha=1.0))):
        best = recommend_coverage(3, params, model)
        print(f"  under {label:35s}: e = {best.e} "
              f"(MTTDL {best.mttdl_hours:.3g} hours)")

    print("\nTakeaway: with scattered failures it pays to spread the parity "
          "sectors over several chunks (e = (1, 2)); with bursty failures it "
          "pays to concentrate them (e = (s)) -- and only STAIR codes let you "
          "pick either, for any s.")


if __name__ == "__main__":
    main()
