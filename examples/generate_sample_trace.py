"""Regenerate the committed sample failure trace (`sample_trace.csv`).

The sample is a seeded synthetic fleet in the Backblaze drive-stats
daily-snapshot format, small enough to commit yet statistically rich
enough for the docs and tests to fit survival curves from: a majority
population with memoryless (exponential) lifetimes plus an
infant-mortality cohort (Weibull shape < 1), observed for 120 days so a
realistic fraction of devices is right-censored.

Run from the repository root::

    PYTHONPATH=src python examples/generate_sample_trace.py

The output is deterministic (seed 2024): re-running it must reproduce
`examples/sample_trace.csv` byte for byte, which is what lets CI and
`docs/traces.md` treat the committed file as ground truth.
"""

import pathlib

from repro.sim.lifetimes import ExponentialLifetime, WeibullLifetime
from repro.sim.traces import (
    concatenate_traces,
    generate_trace,
    load_drive_stats_csv,
    write_drive_stats_csv,
)

#: Generator parameters (change them and re-run to refresh the sample).
SEED = 2024
HEALTHY_DEVICES = 130
HEALTHY_MTTF_HOURS = 1200.0
INFANT_DEVICES = 30
INFANT_SCALE_HOURS = 400.0
INFANT_SHAPE = 0.7
OBSERVATION_DAYS = 120

OUTPUT = pathlib.Path(__file__).resolve().parent / "sample_trace.csv"


def build_trace():
    observation_hours = OBSERVATION_DAYS * 24.0
    healthy = generate_trace(ExponentialLifetime(HEALTHY_MTTF_HOURS),
                             HEALTHY_DEVICES, observation_hours,
                             seed=SEED)
    infant = generate_trace(WeibullLifetime(INFANT_SCALE_HOURS,
                                            INFANT_SHAPE),
                            INFANT_DEVICES, observation_hours,
                            seed=SEED + 1)
    return concatenate_traces(healthy, infant, source="sample_trace")


def main() -> int:
    trace = build_trace()
    rows = write_drive_stats_csv(trace, OUTPUT)
    written = load_drive_stats_csv(OUTPUT)
    print(f"wrote {OUTPUT.name}: {rows} snapshot rows, "
          f"{written.describe()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
