#!/usr/bin/env python3
"""Protecting an SSD array against bursts of contiguous bad blocks.

Field studies (Bairavasundaram et al., Schroeder et al.) show that latent
sector errors arrive in *bursts* of contiguous sectors, and worn-out
flash blocks behave the same way.  §2 of the paper shows how to pick the
coverage vector e for a target burst length β, and why this is far
cheaper than intra-device redundancy (IDR).

This example:

1. picks e for β = 4 with the configurator,
2. compares the redundancy against IDR and traditional erasure codes,
3. builds the array on the simulator, injects Pareto-distributed failure
   bursts, and verifies the data survives.

Run with:  python examples/ssd_burst_protection.py
"""

import numpy as np

from repro.analysis import compare_space
from repro.array import (
    BurstLengthDistribution,
    FailureInjector,
    StorageArray,
    random_payload,
)
from repro.codes import StairStripeCode
from repro.reliability import coverage_for_burst

N_DEVICES = 8
ROWS = 16
M = 2
BURST_LENGTH = 4
SYMBOL = 64
STRIPES = 6


def main() -> None:
    # 1. Choose the coverage vector for the target burst length.
    e = coverage_for_burst(BURST_LENGTH, extra_single_failures=1)
    print(f"Target burst length beta = {BURST_LENGTH}  ->  e = {e}")

    # 2. Space comparison (the §2 numbers).
    comparison = compare_space(n=N_DEVICES, r=ROWS, m=M, e=e)
    base = M * ROWS
    print("\nRedundant sectors per stripe beyond the m parity chunks:")
    print(f"  traditional erasure codes : {comparison.traditional_redundant_sectors - base}")
    print(f"  intra-device redundancy   : {comparison.idr_redundant_sectors - base}")
    print(f"  STAIR e={e}             : {comparison.stair_redundant_sectors - base}")

    # 3. Build the array and hammer it with failure bursts.
    code = StairStripeCode(n=N_DEVICES, r=ROWS, m=M, e=e)
    array = StorageArray(code, num_stripes=STRIPES, symbol_size=SYMBOL)
    payload = random_payload(array.capacity, seed=3)
    array.write(payload)

    injector = FailureInjector(N_DEVICES, STRIPES, ROWS, seed=11)
    # Burst length distribution: mostly single blocks, occasionally up to beta.
    distribution = BurstLengthDistribution(b1=0.6, alpha=1.2,
                                           max_length=BURST_LENGTH)
    survived = 0
    rounds = 12
    rng = np.random.default_rng(5)
    for round_index in range(rounds):
        event = injector.burst_sector_failures(1, distribution)
        # Occasionally a whole device dies as well.
        if rng.random() < 0.25:
            event.device_failures.extend(
                injector.random_device_failures(1).device_failures)
        array.inject(event)
        try:
            assert array.read(len(payload)) == payload
            array.rebuild()
            array.scrub()
            survived += 1
        except Exception as exc:  # noqa: BLE001 - report and stop
            print(f"  round {round_index}: data loss ({exc})")
            break

    print(f"\nSurvived {survived}/{rounds} failure rounds "
          f"(each: one burst of up to {BURST_LENGTH} bad blocks, sometimes "
          "plus a device failure), repairing after each round.")
    print(f"Array healthy at the end: {array.status().healthy}")


if __name__ == "__main__":
    main()
