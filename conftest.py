"""Repository-level pytest configuration.

Adds ``src/`` to ``sys.path`` so the test and benchmark suites work both
against an installed package and a plain source checkout (useful in
offline environments where ``pip install -e .`` is unavailable).
"""

import pathlib
import sys

SRC = pathlib.Path(__file__).resolve().parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
